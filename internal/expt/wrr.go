package expt

import (
	"fmt"

	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/runner"
	"lotterybus/internal/stats"
	"lotterybus/internal/traffic"
)

// WRRComparison contrasts the randomized lottery against deficit
// weighted round robin — the deterministic proportional-share discipline
// from the packet-scheduling literature the paper cites as related work.
// Both deliver weight-proportional bandwidth; the comparison quantifies
// what the lottery's randomness costs in latency jitter and what it
// buys in arbiter simplicity (a WRR needs per-master deficit state and
// a visit schedule; the lottery needs one random draw).
type WRRComparison struct {
	// BW[arch][i] is master i's bandwidth fraction.
	LotteryBW, WRRBW [4]float64
	// Latency and jitter (std dev of per-word latency over messages)
	// for the highest-weight master.
	LotteryLatency, WRRLatency float64
	LotteryJitter, WRRJitter   float64
}

// Table renders the comparison.
func (r *WRRComparison) Table() *stats.Table {
	t := stats.NewTable("Lottery vs deficit weighted round robin (weights 1:2:3:4)",
		"architecture", "C1 bw%", "C2 bw%", "C3 bw%", "C4 bw%", "C4 cyc/word", "C4 jitter")
	t.AddRow("lotterybus",
		fmt.Sprintf("%.1f", 100*r.LotteryBW[0]),
		fmt.Sprintf("%.1f", 100*r.LotteryBW[1]),
		fmt.Sprintf("%.1f", 100*r.LotteryBW[2]),
		fmt.Sprintf("%.1f", 100*r.LotteryBW[3]),
		fmt.Sprintf("%.2f", r.LotteryLatency),
		fmt.Sprintf("%.2f", r.LotteryJitter))
	t.AddRow("weighted-round-robin",
		fmt.Sprintf("%.1f", 100*r.WRRBW[0]),
		fmt.Sprintf("%.1f", 100*r.WRRBW[1]),
		fmt.Sprintf("%.1f", 100*r.WRRBW[2]),
		fmt.Sprintf("%.1f", 100*r.WRRBW[3]),
		fmt.Sprintf("%.2f", r.WRRLatency),
		fmt.Sprintf("%.2f", r.WRRJitter))
	return t
}

// RunWRRComparison measures both disciplines under full contention —
// four saturating masters with weights 1:2:3:4 — where proportional
// sharing and the service-pattern differences are visible.
func RunWRRComparison(o Options) (*WRRComparison, error) {
	o = o.fill()
	weights := []uint64{1, 2, 3, 4}

	run := func(mk func() (bus.Arbiter, error)) (*bus.Bus, error) {
		a, err := mk()
		if err != nil {
			return nil, err
		}
		b := bus.New(bus.Config{MaxBurst: 16})
		for i := range weights {
			b.AddMaster(fmt.Sprintf("C%d", i+1), &traffic.Saturating{Words: 16}, bus.MasterOpts{})
		}
		b.AddSlave("mem", bus.SlaveOpts{})
		b.SetArbiter(a)
		if err := b.Run(o.Cycles); err != nil {
			return nil, err
		}
		return b, nil
	}

	res := &WRRComparison{}
	if err := runner.Do(o.workers(),
		func() error {
			bl, err := run(func() (bus.Arbiter, error) {
				return lotteryArbiter(o, weights, "wrr")
			})
			if err != nil {
				return err
			}
			copy(res.LotteryBW[:], bandwidths(bl.Collector()))
			res.LotteryLatency = bl.Collector().PerWordLatency(3)
			res.LotteryJitter = bl.Collector().LatencyHistogram(3).StdDev()
			return nil
		},
		func() error {
			bw, err := run(func() (bus.Arbiter, error) {
				return arb.NewWeightedRoundRobin(weights, 4)
			})
			if err != nil {
				return err
			}
			copy(res.WRRBW[:], bandwidths(bw.Collector()))
			res.WRRLatency = bw.Collector().PerWordLatency(3)
			res.WRRJitter = bw.Collector().LatencyHistogram(3).StdDev()
			return nil
		},
	); err != nil {
		return nil, err
	}
	return res, nil
}
