package stats

import "fmt"

// Timeline samples per-master bandwidth shares over fixed windows of
// bus cycles — the view needed to watch dynamic ticket re-provisioning
// take effect (and generally any transient). Attach Hook to
// bus.Bus.OnOwner.
type Timeline struct {
	n      int
	window int64
	counts []int64 // current window word counts per master
	filled int64   // cycles accumulated in the current window
	shares [][]float64
}

// NewTimeline returns a sampler over n masters with the given window in
// cycles (minimum 1).
func NewTimeline(n int, window int64) *Timeline {
	if n <= 0 {
		panic("stats: timeline needs at least one master")
	}
	if window <= 0 {
		window = 1
	}
	return &Timeline{n: n, window: window, counts: make([]int64, n)}
}

// Hook consumes one cycle's bus owner (-1 for idle).
func (t *Timeline) Hook(_ int64, owner int) {
	if owner >= 0 && owner < t.n {
		t.counts[owner]++
	}
	t.filled++
	if t.filled == t.window {
		row := make([]float64, t.n)
		for i, c := range t.counts {
			row[i] = float64(c) / float64(t.window)
			t.counts[i] = 0
		}
		t.shares = append(t.shares, row)
		t.filled = 0
	}
}

// Windows returns the number of completed windows.
func (t *Timeline) Windows() int { return len(t.shares) }

// Share returns master m's bandwidth share in window w.
func (t *Timeline) Share(w, m int) float64 { return t.shares[w][m] }

// Window returns the window length in cycles.
func (t *Timeline) Window() int64 { return t.window }

// SettleWindow returns the first window at or after window from in which
// master m's share reaches threshold and stays at or above it for the
// remainder of the recording, or -1 if it never settles.
func (t *Timeline) SettleWindow(from, m int, threshold float64) int {
	settled := -1
	for w := from; w < len(t.shares); w++ {
		if t.shares[w][m] >= threshold {
			if settled == -1 {
				settled = w
			}
		} else {
			settled = -1
		}
	}
	return settled
}

// Series renders master m's share trajectory as a Series for plotting.
func (t *Timeline) Series(m int, name string) *Series {
	s := &Series{Name: name}
	for w := range t.shares {
		s.Add(fmt.Sprintf("%d", (int64(w)+1)*t.window), t.shares[w][m])
	}
	return s
}
