// Package analytic provides closed-form performance models for the
// arbitration schemes in this repository — the back-of-envelope
// calculations a communication-architecture designer makes before
// simulating. The package's tests validate every model against the
// cycle-accurate simulator, and the model-validation experiment
// (expt.RunModelValidation) reports model-vs-simulation side by side.
package analytic

import (
	"fmt"
	"math"

	"lotterybus/internal/core"
)

// LotteryShare returns the long-run bandwidth fraction master i receives
// from a lottery when every listed master is continuously backlogged:
// t_i / Σ t_j (paper §4.2).
func LotteryShare(tickets []uint64, i int) float64 {
	var total uint64
	for _, t := range tickets {
		total += t
	}
	if total == 0 || i < 0 || i >= len(tickets) {
		return 0
	}
	return float64(tickets[i]) / float64(total)
}

// ExpectedLotteriesToWin returns the mean number of lotteries until a
// master holding t of total live tickets first wins: 1/p with p = t/T
// (the win process is geometric and memoryless).
func ExpectedLotteriesToWin(t, total uint64) float64 {
	if t == 0 || total == 0 {
		return math.Inf(1)
	}
	if t >= total {
		return 1
	}
	return float64(total) / float64(t)
}

// LotteryAccessWait estimates the mean cycles between a request arriving
// at an otherwise idle master and its first word moving, when the other
// ticket holders keep the bus continuously busy with bursts of
// meanBurst words: the residual life of the in-progress burst plus one
// full burst per lost lottery.
//
//	wait ≈ meanBurst/2 + (1/p − 1)·meanBurst,  p = t/total.
func LotteryAccessWait(t, total uint64, meanBurst float64) float64 {
	if meanBurst <= 0 {
		return 0
	}
	p := 0.0
	if total > 0 {
		p = float64(t) / float64(total)
	}
	if p <= 0 {
		return math.Inf(1)
	}
	if p > 1 {
		p = 1
	}
	return meanBurst/2 + (1/p-1)*meanBurst
}

// TDMAAlignmentWait returns the mean cycles a request arriving at a
// uniformly random wheel position waits for the start of its owner's
// contiguous reservation block, under single-level TDMA (idle slots are
// wasted, paper Fig. 5). block is the owner's contiguous slot count and
// wheel the total wheel length. Arrivals inside the block start
// immediately; an arrival d slots before the block start waits d:
//
//	wait = Σ_{d=1..wheel−block} d / wheel = (L−b)(L−b+1)/(2L).
func TDMAAlignmentWait(block, wheel int) (float64, error) {
	if wheel <= 0 || block <= 0 || block > wheel {
		return 0, fmt.Errorf("analytic: invalid wheel %d/block %d", wheel, block)
	}
	gap := float64(wheel - block)
	return gap * (gap + 1) / (2 * float64(wheel)), nil
}

// TDMAServiceShare returns the fraction of bus words a master drains
// under two-level TDMA when the masters in pendingMask are all
// continuously backlogged: its own slots plus an equal (round-robin)
// share of every idle master's slots. A uint64 mask only addresses
// masters 0..63; wider wheels go through TDMAServiceShareSet.
func TDMAServiceShare(slots []int, i int, pendingMask uint64) (float64, error) {
	return TDMAServiceShareSet(slots, i, core.Mask64Bitset(pendingMask))
}

// TDMAServiceShareSet is TDMAServiceShare over a wide request map, for
// wheels beyond one machine word. The old 1<<n-1 full-mask idiom could
// never assert bit 64 and above — build the saturated map with
// core.FullBitset(len(slots)) instead.
func TDMAServiceShareSet(slots []int, i int, pending core.Bitset) (float64, error) {
	if i < 0 || i >= len(slots) {
		return 0, fmt.Errorf("analytic: master %d out of range", i)
	}
	if len(slots) > core.MaxMasters {
		return 0, fmt.Errorf("analytic: %d masters exceeds core.MaxMasters (%d)", len(slots), core.MaxMasters)
	}
	if !pending.Test(i) {
		return 0, nil
	}
	total := 0
	idle := 0
	contenders := 0
	for j, s := range slots {
		if s < 0 {
			return 0, fmt.Errorf("analytic: negative slot count")
		}
		total += s
		if pending.Test(j) {
			contenders++
		} else {
			idle += s
		}
	}
	if total == 0 || contenders == 0 {
		return 0, fmt.Errorf("analytic: empty wheel or no contenders")
	}
	own := float64(slots[i]) / float64(total)
	reclaim := float64(idle) / float64(total) / float64(contenders)
	return own + reclaim, nil
}

// GeoD1Wait returns the mean queueing delay (cycles, excluding service)
// of a discrete-time Geo/D/1 queue — Bernoulli arrivals (at most one
// message per cycle) and deterministic service of service cycles, the
// exact regime of a lone master on this simulator:
//
//	W = ρ·(S−1) / (2(1−ρ)).
//
// Note the S−1: a one-cycle message served the cycle it arrives can
// never queue behind an empty system, unlike in continuous-time M/D/1.
func GeoD1Wait(rho, service float64) (float64, error) {
	if rho < 0 || rho >= 1 {
		return 0, fmt.Errorf("analytic: utilization %v outside [0, 1)", rho)
	}
	if service <= 0 {
		return 0, fmt.Errorf("analytic: non-positive service time")
	}
	return rho * (service - 1) / (2 * (1 - rho)), nil
}

// SaturatedPerWordLatency returns the per-word latency of master i when
// every master is continuously backlogged and the arbiter delivers it a
// share s of the bus: each word effectively needs 1/s cycles.
func SaturatedPerWordLatency(share float64) float64 {
	if share <= 0 {
		return math.Inf(1)
	}
	if share > 1 {
		share = 1
	}
	return 1 / share
}
