module lotterybus

go 1.22
