package lotterybus

import (
	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/core"
	"lotterybus/internal/prng"
)

// Shared arbiter constructors behind the System.Use* and ReplicaSet.Use*
// selectors. Each takes the already-derived stream seed (where the
// scheme is randomized) so System can derive from its single seed and
// ReplicaSet from one seed per lane, with the same labels — that is what
// keeps a ReplicaSet lane bit-identical to a scalar System built at the
// lane's seed.

// Seed-derivation labels, one per randomized scheme.
const (
	staticLotteryLabel      = "lotterybus/static"
	dynamicLotteryLabel     = "lotterybus/dynamic"
	compensatedLotteryLabel = "lotterybus/compensated"
)

// buildStaticLottery constructs the static LOTTERYBUS arbiter over the
// weights, drawing from streamSeed.
func buildStaticLottery(streamSeed uint64, weights []uint64) (bus.Arbiter, error) {
	mgr, err := core.NewStaticLottery(core.StaticConfig{
		Tickets: weights,
		Source:  prng.NewXorShift64Star(streamSeed),
	})
	if err != nil {
		return nil, err
	}
	return arb.NewStaticLottery(mgr), nil
}

// buildDynamicLottery constructs the dynamic LOTTERYBUS arbiter for n
// masters, drawing from streamSeed.
func buildDynamicLottery(streamSeed uint64, n int) (bus.Arbiter, error) {
	mgr, err := core.NewDynamicLottery(core.DynamicConfig{
		Masters: n,
		Source:  prng.NewXorShift64Star(streamSeed),
	})
	if err != nil {
		return nil, err
	}
	return arb.NewDynamicLottery(mgr), nil
}

// buildCompensatedLottery constructs the compensated lottery over the
// weights with the given burst clamp, drawing from streamSeed.
func buildCompensatedLottery(streamSeed uint64, weights []uint64, maxBurst int) (bus.Arbiter, error) {
	mgr, err := core.NewDynamicLottery(core.DynamicConfig{
		Masters: len(weights),
		Source:  prng.NewXorShift64Star(streamSeed),
	})
	if err != nil {
		return nil, err
	}
	if maxBurst == 0 {
		maxBurst = 16
	}
	return arb.NewCompensatedLottery(weights, maxBurst, mgr)
}

// newPriorityArb constructs static-priority arbitration over the
// weights (larger wins).
func newPriorityArb(weights []uint64) (bus.Arbiter, error) {
	return arb.NewPriority(weights)
}

// newRoundRobinArb constructs weight-blind round-robin arbitration.
func newRoundRobinArb(n int) (bus.Arbiter, error) {
	return arb.NewRoundRobin(n)
}

// newTokenRingArb constructs token-ring arbitration (one cycle per hop).
func newTokenRingArb(n int) (bus.Arbiter, error) {
	return arb.NewTokenRing(n, 0)
}

// buildTDMA constructs a TDMA arbiter with weight*slotsPerWeight
// contiguous slots per master.
func buildTDMA(weights []uint64, slotsPerWeight int, twoLevel bool) (bus.Arbiter, error) {
	if slotsPerWeight <= 0 {
		slotsPerWeight = 1
	}
	slots := make([]int, len(weights))
	for i, w := range weights {
		slots[i] = int(w) * slotsPerWeight
	}
	return arb.NewTDMA(arb.ContiguousWheel(slots), len(weights), twoLevel)
}
