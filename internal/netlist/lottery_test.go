package netlist

import (
	"testing"

	"lotterybus/internal/core"
	"lotterybus/internal/prng"
)

func TestBuildStaticGrantValidation(t *testing.T) {
	if _, err := BuildStaticGrant(nil, 6, core.PolicyRedraw); err == nil {
		t.Fatal("empty tickets accepted")
	}
	if _, err := BuildStaticGrant(make([]uint64, 9), 6, core.PolicyRedraw); err == nil {
		t.Fatal("9 masters accepted")
	}
	if _, err := BuildStaticGrant([]uint64{1, 2}, 6, core.PolicyExact); err == nil {
		t.Fatal("exact policy accepted")
	}
}

// exhaustiveEquivalence checks the gate-level grant against the
// behavioural manager for EVERY (request map, random word) pair.
func exhaustiveEquivalence(t *testing.T, tickets []uint64, width uint, policy core.SlackPolicy) {
	t.Helper()
	n := len(tickets)
	nl, err := BuildStaticGrant(tickets, width, policy)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := core.ScaleTickets(tickets, width)
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		for r := uint64(0); r < 1<<width; r++ {
			out, err := nl.Eval(map[string][]bool{
				"req":  Uint64ToBits(mask, n),
				"rand": Uint64ToBits(r, int(width)),
			})
			if err != nil {
				t.Fatal(err)
			}
			got, err := GrantOf(out["gnt"])
			if err != nil {
				t.Fatalf("mask %b rand %d: %v", mask, r, err)
			}
			// Reference: comparator semantics over scaled holdings.
			want := core.NoWinner
			var acc uint64
			for i := 0; i < n; i++ {
				if mask>>uint(i)&1 == 1 {
					acc += scaled[i]
				}
				if want == core.NoWinner && r < acc {
					want = i
				}
			}
			if want == core.NoWinner && policy == core.PolicyAbsorbLast && mask != 0 {
				for i := n - 1; i >= 0; i-- {
					if mask>>uint(i)&1 == 1 {
						want = i
						break
					}
				}
			}
			if got != want {
				t.Fatalf("policy %v mask %0*b rand %d: netlist %d, reference %d",
					policy, n, mask, r, got, want)
			}
		}
	}
}

func TestStaticGrantExhaustiveRedraw(t *testing.T) {
	exhaustiveEquivalence(t, []uint64{1, 2, 3}, 4, core.PolicyRedraw)
}

func TestStaticGrantExhaustiveAbsorbLast(t *testing.T) {
	exhaustiveEquivalence(t, []uint64{1, 2, 3}, 4, core.PolicyAbsorbLast)
}

func TestStaticGrantExhaustiveUnevenTickets(t *testing.T) {
	exhaustiveEquivalence(t, []uint64{5, 1, 1, 9}, 5, core.PolicyRedraw)
}

func TestStaticGrantMatchesHWModelSampled(t *testing.T) {
	// Random sampling at the paper's four-master 16-bit design point,
	// cross-checked against the behavioural core manager driven by the
	// identical random words.
	tickets := []uint64{1, 2, 3, 4}
	const width = 8
	nl, err := BuildStaticGrant(tickets, width, core.PolicyRedraw)
	if err != nil {
		t.Fatal(err)
	}
	src := prng.NewXorShift64Star(33)
	words := &replaySource{}
	ref, err := core.NewStaticLottery(core.StaticConfig{
		Tickets: tickets,
		Source:  words,
		Policy:  core.PolicyRedraw,
		Width:   width,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 3000; k++ {
		mask := prng.Uintn(src, 16)
		word := prng.Uintn(src, 1<<width)
		out, err := nl.Eval(map[string][]bool{
			"req":  Uint64ToBits(mask, 4),
			"rand": Uint64ToBits(word, width),
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := GrantOf(out["gnt"])
		if err != nil {
			t.Fatal(err)
		}
		words.word = word
		want := ref.Draw(mask)
		if got != want {
			t.Fatalf("mask %04b word %d: netlist %d, core %d", mask, word, got, want)
		}
	}
}

// replaySource returns a fixed word from Uint64.
type replaySource struct{ word uint64 }

func (s *replaySource) Uint64() uint64 { return s.word }

func TestStaticGrantCensus(t *testing.T) {
	nl, err := BuildStaticGrant([]uint64{1, 2, 3, 4}, 16, core.PolicyRedraw)
	if err != nil {
		t.Fatal(err)
	}
	if nl.NumGates() < 100 {
		t.Fatalf("implausibly small netlist: %d gates", nl.NumGates())
	}
	if nl.Depth() < 8 {
		t.Fatalf("implausibly shallow: depth %d", nl.Depth())
	}
	counts := nl.GateCounts()
	if counts[And] == 0 || counts[Xor] == 0 || counts[Or] == 0 {
		t.Fatalf("census %v", counts)
	}
}

func TestGrantOf(t *testing.T) {
	if w, err := GrantOf([]bool{false, true, false}); err != nil || w != 1 {
		t.Fatalf("%v %v", w, err)
	}
	if w, err := GrantOf([]bool{false, false}); err != nil || w != core.NoWinner {
		t.Fatalf("%v %v", w, err)
	}
	if _, err := GrantOf([]bool{true, true}); err == nil {
		t.Fatal("double grant accepted")
	}
}

func TestUint64ToBits(t *testing.T) {
	bits := Uint64ToBits(0b101, 4)
	want := []bool{true, false, true, false}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bits %v", bits)
		}
	}
}
