package check

import (
	"fmt"

	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/core"
	"lotterybus/internal/prng"
	"lotterybus/internal/runner"
	"lotterybus/internal/traffic"
)

// This file owns the verification grid — 6 bus configurations × 9
// arbiters × 6 traffic classes — shared by the fast-forward equivalence
// suite (internal/bus's TestFastForwardEquivalence builds its cells from
// these constructors), the invariant matrix (RunMatrix), and the golden
// fingerprint corpus (golden.go). Keeping one grid means a new arbiter
// or traffic class added here is automatically equivalence-tested,
// audited and pinned.

// MatrixMasters is the master count of every grid cell (the paper's
// canonical four-master system).
const MatrixMasters = 4

// ArbMaker names and constructs one arbiter configuration of the grid.
// Make returns a fresh arbiter with fresh PRNG state per bus instance.
type ArbMaker struct {
	Name string
	Make func() (bus.Arbiter, error)
}

// Arbiters returns the nine arbiter configurations of the grid.
func Arbiters() []ArbMaker {
	return []ArbMaker{
		{"priority", func() (bus.Arbiter, error) {
			return arb.NewPriority([]uint64{3, 1, 2, 0})
		}},
		{"roundrobin", func() (bus.Arbiter, error) {
			return arb.NewRoundRobin(MatrixMasters)
		}},
		{"tokenring", func() (bus.Arbiter, error) {
			return arb.NewTokenRing(MatrixMasters, 8)
		}},
		{"tdma", func() (bus.Arbiter, error) {
			return arb.NewTDMA(arb.ContiguousWheel([]int{4, 3, 2, 1}), MatrixMasters, false)
		}},
		{"tdma-2level", func() (bus.Arbiter, error) {
			return arb.NewTDMA(arb.ContiguousWheel([]int{4, 3, 2, 1}), MatrixMasters, true)
		}},
		{"wrr", func() (bus.Arbiter, error) {
			return arb.NewWeightedRoundRobin([]uint64{1, 2, 3, 4}, 16)
		}},
		{"static-lottery", func() (bus.Arbiter, error) {
			mgr, err := core.NewStaticLottery(core.StaticConfig{
				Tickets: []uint64{1, 2, 3, 4},
				Source:  prng.NewXorShift64Star(42),
			})
			if err != nil {
				return nil, err
			}
			return arb.NewStaticLottery(mgr), nil
		}},
		{"dynamic-lottery", func() (bus.Arbiter, error) {
			mgr, err := core.NewDynamicLottery(core.DynamicConfig{
				Masters: MatrixMasters,
				Source:  prng.NewXorShift64Star(42),
			})
			if err != nil {
				return nil, err
			}
			return arb.NewDynamicLottery(mgr), nil
		}},
		{"compensated-lottery", func() (bus.Arbiter, error) {
			mgr, err := core.NewDynamicLottery(core.DynamicConfig{
				Masters: MatrixMasters,
				Source:  prng.NewXorShift64Star(42),
			})
			if err != nil {
				return nil, err
			}
			return arb.NewCompensatedLottery([]uint64{1, 2, 3, 4}, 64, mgr)
		}},
	}
}

// matrixTrace builds a deterministic replayable trace with bunched
// arrivals (including same-cycle duplicates, which Tick must emit in
// order).
func matrixTrace(seed uint64) *traffic.Trace {
	src := prng.NewXorShift64Star(seed)
	var arr []traffic.Arrival
	c := int64(0)
	for len(arr) < 300 {
		c += int64(prng.Geometric(src, 0.02))
		arr = append(arr, traffic.Arrival{Cycle: c, Words: prng.IntRange(src, 1, 24), Slave: int(c) % 2})
		if prng.Bernoulli(src, 0.2) {
			arr = append(arr, traffic.Arrival{Cycle: c, Words: 2, Slave: 0})
		}
	}
	return &traffic.Trace{Arrivals: arr}
}

// GenMaker names and constructs one traffic class of the grid; Make
// builds master i's generator. FastForwards reports whether a run under
// this class should actually skip cycles (low-load classes), which the
// equivalence suite asserts.
type GenMaker struct {
	Name         string
	FastForwards bool
	Make         func(i int, seed uint64) (bus.Generator, error)
}

// TrafficClasses returns the six traffic classes of the grid.
func TrafficClasses() []GenMaker {
	bern := func(load float64) func(i int, seed uint64) (bus.Generator, error) {
		return func(i int, seed uint64) (bus.Generator, error) {
			return traffic.NewBernoulli(load, traffic.Fixed(16), i%2, seed)
		}
	}
	onoff := func(i int, seed uint64) (bus.Generator, error) {
		return traffic.NewOnOff(traffic.OnOffConfig{
			MeanOn: 50, MeanOff: 250, LoadOn: 0.8,
			Size: traffic.Geometric{MeanWords: 8}, Slave: i % 2, Seed: seed,
		})
	}
	return []GenMaker{
		{"bernoulli-low", true, bern(0.04)},
		{"bernoulli-high", false, bern(0.72)},
		{"onoff", true, onoff},
		{"periodic", true, func(i int, seed uint64) (bus.Generator, error) {
			return &traffic.Periodic{Period: int64(40 + 13*i), Phase: int64(7 * i), Words: 8, Slave: i % 2}, nil
		}},
		{"trace", true, func(i int, seed uint64) (bus.Generator, error) {
			return matrixTrace(seed), nil
		}},
		{"mixed", true, func(i int, seed uint64) (bus.Generator, error) {
			switch i % 4 {
			case 0:
				return bern(0.1)(i, seed)
			case 1:
				return onoff(i, seed)
			case 2:
				return &traffic.Periodic{Period: 97, Phase: 11, Words: 4, Slave: 1}, nil
			default:
				return matrixTrace(seed), nil
			}
		}},
	}
}

// BusConfig is one bus/slave parameterization of the grid.
type BusConfig struct {
	Name string
	Cfg  bus.Config
	// WaitStates is slave 0's per-word wait states; SplitLatency is
	// slave 1's split-transaction latency (0 makes it a plain slave).
	WaitStates   int
	SplitLatency int
}

// BusConfigs returns the six bus configurations of the grid.
func BusConfigs() []BusConfig {
	return []BusConfig{
		{"base", bus.Config{MaxBurst: 16}, 0, 0},
		{"waitstates", bus.Config{MaxBurst: 16}, 3, 0},
		{"split", bus.Config{MaxBurst: 16}, 0, 20},
		{"arblatency", bus.Config{MaxBurst: 16, ArbLatency: 2}, 1, 0},
		{"smallburst", bus.Config{MaxBurst: 4}, 0, 0},
		{"tinyqueue", bus.Config{MaxBurst: 16, DefaultQueueCap: 4}, 2, 12},
	}
}

// Build assembles one grid cell's bus: four masters with tickets 1..4
// driven by gm's generators (seeds 100..103), a wait-state memory slave
// and a (possibly split) io slave, and am's arbiter attached.
func Build(bc BusConfig, am ArbMaker, gm GenMaker, disableFastForward bool) (*bus.Bus, error) {
	return BuildSeeded(bc, am, gm, disableFastForward, 0)
}

// BuildSeeded is Build with every master's generator seed shifted by
// seedOffset (master i gets 100+i+seedOffset). The lane-engine
// equivalence suite uses it to construct the scalar reference for each
// replica lane of a grid cell.
func BuildSeeded(bc BusConfig, am ArbMaker, gm GenMaker, disableFastForward bool, seedOffset uint64) (*bus.Bus, error) {
	b := bus.New(bc.Cfg)
	b.DisableFastForward = disableFastForward
	for i := 0; i < MatrixMasters; i++ {
		gen, err := gm.Make(i, uint64(100+i)+seedOffset)
		if err != nil {
			return nil, fmt.Errorf("check: %s/%s master %d: %w", bc.Name, gm.Name, i, err)
		}
		b.AddMaster(fmt.Sprintf("m%d", i), gen, bus.MasterOpts{Tickets: uint64(i + 1)})
	}
	b.AddSlave("mem", bus.SlaveOpts{WaitStates: bc.WaitStates})
	b.AddSlave("io", bus.SlaveOpts{SplitLatency: bc.SplitLatency})
	a, err := am.Make()
	if err != nil {
		return nil, fmt.Errorf("check: %s arbiter: %w", am.Name, err)
	}
	b.SetArbiter(a)
	return b, nil
}

// Cell is one matrix cell's outcome.
type Cell struct {
	// Config, Arbiter and Traffic name the grid coordinates.
	Config, Arbiter, Traffic string
	// Fingerprint is the fast-engine collector fingerprint.
	Fingerprint uint64
	// EnginesAgree reports whether the naive per-cycle loop and the
	// fast-forward engine produced identical collector fingerprints.
	EnginesAgree bool
	// Violations are the invariant-audit failures of the fast-engine
	// run (the naive run is bit-identical whenever EnginesAgree).
	Violations []Violation
}

// Name returns the cell's grid coordinates as one slash-joined label.
func (c Cell) Name() string {
	return c.Config + "/" + c.Arbiter + "/" + c.Traffic
}

// MatrixResult is the outcome of one full matrix run.
type MatrixResult struct {
	Cycles int64
	Cells  []Cell
}

// Disagreements counts cells where the two engines diverged.
func (r *MatrixResult) Disagreements() int {
	n := 0
	for _, c := range r.Cells {
		if !c.EnginesAgree {
			n++
		}
	}
	return n
}

// ViolationCount counts invariant violations across all cells.
func (r *MatrixResult) ViolationCount() int {
	n := 0
	for _, c := range r.Cells {
		n += len(c.Violations)
	}
	return n
}

// Fingerprint folds every cell fingerprint (in grid order) into one
// matrix fingerprint — the value the golden corpus pins.
func (r *MatrixResult) Fingerprint() uint64 {
	h := fnvMix(fnvOffset, uint64(r.Cycles))
	for _, c := range r.Cells {
		h = fnvMix(h, c.Fingerprint)
	}
	return h
}

// RunMatrix runs the full verification matrix: every cell simulates
// cycles bus cycles twice — naive per-cycle loop and fast-forward
// engine — asserts the collector fingerprints agree, and audits the
// result. Cells run on workers goroutines (0 consults
// LOTTERYBUS_PARALLEL then GOMAXPROCS); results are identical for any
// worker count because every cell derives its own PRNG streams.
func RunMatrix(cycles int64, workers int) (*MatrixResult, error) {
	if cycles <= 0 {
		cycles = 20000
	}
	type coord struct {
		bc BusConfig
		am ArbMaker
		gm GenMaker
	}
	var coords []coord
	for _, bc := range BusConfigs() {
		for _, am := range Arbiters() {
			for _, gm := range TrafficClasses() {
				coords = append(coords, coord{bc, am, gm})
			}
		}
	}
	cells, err := runner.Map(runner.Workers(workers), len(coords), func(i int) (Cell, error) {
		co := coords[i]
		naive, err := Build(co.bc, co.am, co.gm, true)
		if err != nil {
			return Cell{}, err
		}
		fast, err := Build(co.bc, co.am, co.gm, false)
		if err != nil {
			return Cell{}, err
		}
		if err := naive.Run(cycles); err != nil {
			return Cell{}, fmt.Errorf("check: %s/%s/%s naive: %w", co.bc.Name, co.am.Name, co.gm.Name, err)
		}
		if err := fast.Run(cycles); err != nil {
			return Cell{}, fmt.Errorf("check: %s/%s/%s fast: %w", co.bc.Name, co.am.Name, co.gm.Name, err)
		}
		cell := Cell{
			Config:       co.bc.Name,
			Arbiter:      co.am.Name,
			Traffic:      co.gm.Name,
			Fingerprint:  fast.Collector().Fingerprint(),
			EnginesAgree: naive.Collector().Fingerprint() == fast.Collector().Fingerprint(),
		}
		cell.Violations = Audit(fast)
		if !cell.EnginesAgree {
			cell.Violations = append(cell.Violations, Violation{"engine-divergence", -1, fmt.Sprintf(
				"naive fingerprint %#x, fast-forward fingerprint %#x",
				naive.Collector().Fingerprint(), cell.Fingerprint)})
		}
		return cell, nil
	})
	if err != nil {
		return nil, err
	}
	return &MatrixResult{Cycles: cycles, Cells: cells}, nil
}
