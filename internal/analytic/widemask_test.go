package analytic

import (
	"math"
	"testing"

	"lotterybus/internal/core"
)

// TestTDMAServiceShareFullWheel64 pins the exactly-64-master boundary:
// the saturated full mask must assert all 64 request bits, and the
// reclaimed-slack share math must see zero idle slots.
func TestTDMAServiceShareFullWheel64(t *testing.T) {
	slots := make([]int, 64)
	for i := range slots {
		slots[i] = 1
	}
	sum := 0.0
	for i := range slots {
		s, err := TDMAServiceShare(slots, i, core.FullMask(64))
		if err != nil {
			t.Fatalf("master %d: %v", i, err)
		}
		if math.Abs(s-1.0/64) > 1e-12 {
			t.Fatalf("master %d share %v, want 1/64", i, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

// TestSaturatedSharesWideTDMA is the cap-lift regression test: with 65
// masters the old 1<<n-1 full-mask idiom could not assert bit 64, so
// SaturatedShares starved master 64 (share 0) and handed its slot to
// the others as reclaimed slack. The wide request map must give every
// master exactly 1/65.
func TestSaturatedSharesWideTDMA(t *testing.T) {
	const n = 65
	p := Point{
		Arbiter:  KindTDMA,
		Weights:  make([]uint64, n),
		MaxBurst: 4,
		Slaves:   []PointSlave{{}},
	}
	p.Masters = make([]PointMaster, n)
	for i := range p.Masters {
		p.Masters[i] = PointMaster{Saturating: true, Words: 4}
		p.Weights[i] = 1
	}
	shares, _, err := SaturatedShares(p)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, s := range shares {
		if math.Abs(s-1.0/n) > 1e-12 {
			t.Fatalf("master %d share %v, want 1/%d", i, s, n)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

// TestTDMAServiceShareSetWide checks the wide entry point directly: a
// 96-slot wheel where only masters above bit 63 contend.
func TestTDMAServiceShareSetWide(t *testing.T) {
	slots := make([]int, 96)
	for i := range slots {
		slots[i] = 1
	}
	var pending core.Bitset
	pending.Set(70)
	pending.Set(90)
	s, err := TDMAServiceShareSet(slots, 70, pending)
	if err != nil {
		t.Fatal(err)
	}
	// Own slot 1/96 plus half of the 94 idle slots.
	want := 1.0/96 + 94.0/96/2
	if math.Abs(s-want) > 1e-12 {
		t.Fatalf("share %v, want %v", s, want)
	}
	if s, _ := TDMAServiceShareSet(slots, 0, pending); s != 0 {
		t.Fatalf("idle master share %v, want 0", s)
	}
	if _, err := TDMAServiceShareSet(make([]int, core.MaxMasters+1), 0, pending); err == nil {
		t.Fatal("over-cap wheel accepted")
	}
}
