// Observability: a live-monitored degradation sweep. The same
// four-master system runs at rising slave-error rates; each point is
// journalled as a JSONL event, recorded into a metrics registry served
// over HTTP while the sweep runs, and summarized with the latency
// percentiles that mean-only reporting hides.
//
//	go run ./examples/observability            # sweep, journal to stdout
//	go run ./examples/observability -listen :8080
//	  # ...then: curl localhost:8080/metrics   (Prometheus text)
//	  #          curl localhost:8080/debug/vars (JSON snapshot)
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lotterybus"
	"lotterybus/internal/obs"
)

// errorRates is the degradation schedule: fault-free through one beat
// in fifty erroring.
var errorRates = []float64{0, 0.001, 0.005, 0.02}

func buildSystem(rate float64) (*lotterybus.System, error) {
	sys := lotterybus.NewSystem(lotterybus.Config{Seed: 7, RetryLimit: 8})
	mem := sys.AddSlave("mem", 1)
	for i, name := range []string{"cpu", "dsp", "dma", "io"} {
		tr, err := lotterybus.BernoulliTraffic(0.18, 16, mem, uint64(100+i))
		if err != nil {
			return nil, err
		}
		sys.AddMaster(name, uint64(i+1), tr)
	}
	if err := sys.UseLottery(); err != nil {
		return nil, err
	}
	if rate > 0 {
		if err := sys.SetFaults(lotterybus.FaultConfig{SlaveError: rate}); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

func main() {
	listen := flag.String("listen", "", "serve live telemetry on this address during the sweep")
	flag.Parse()

	journal := obs.NewJournal(os.Stdout)
	reg := obs.NewRegistry()
	prog := obs.NewProgress(len(errorRates))
	if *listen != "" {
		srv, err := obs.Serve(*listen, reg, prog)
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "telemetry on http://%s\n", srv.Addr())
	}

	journal.Emit("run_start", map[string]any{
		"tool": "example-observability", "points": len(errorRates), "seed": 7,
	})

	fmt.Fprintln(os.Stderr, "\nC4 (weight 4) per-word latency as the slave degrades:")
	fmt.Fprintf(os.Stderr, "  %-8s  %-8s  %-8s  %-8s  %-8s  %s\n",
		"err rate", "mean", "p50", "p95", "p99", "retries")
	for _, rate := range errorRates {
		sys, err := buildSystem(rate)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.Run(400000); err != nil {
			log.Fatal(err)
		}
		rep := sys.Report()

		// One batched registry update per completed run — the hot loop
		// never sees the observability layer (the fault-free point still
		// fast-forwards).
		sys.RecordObs(reg, obs.Labels{"error_rate": fmt.Sprintf("%g", rate)})
		prog.Step()

		io := rep.Masters[3]
		journal.Emit("point_end", map[string]any{
			"errorRate": rate, "p99": io.LatencyP99, "retries": io.Retries,
			"fastForwarded": sys.FastForwardedCycles(),
		})
		fmt.Fprintf(os.Stderr, "  %-8g  %-8.2f  %-8.2f  %-8.2f  %-8.2f  %d\n",
			rate, io.PerWordLatency, io.LatencyP50, io.LatencyP95, io.LatencyP99, io.Retries)
	}
	journal.Emit("run_end", map[string]any{"points": len(errorRates)})

	s := prog.Snapshot()
	fmt.Fprintf(os.Stderr, "\nsweep: %d/%d points in %.2fs — retries climb with the error rate while\n", s.Done, s.Total, s.Elapsed)
	fmt.Fprintln(os.Stderr, "the latency percentiles hold: the retry machinery absorbs the faults, and")
	fmt.Fprintln(os.Stderr, "only the journal's fault counters (not the means) show the bus degrading.")
	fmt.Fprintln(os.Stderr, "Note fastForwarded in the journal: the fault-free point ran event-driven;")
	fmt.Fprintln(os.Stderr, "armed faults force the cycle-accurate loop, and observability never does.")
}
