package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotterybus/internal/expt"
)

// fastOpts keeps the smoke test quick; statistical quality is asserted
// by the expt package's own tests.
var fastOpts = expt.Options{Cycles: 20000, Seed: 3}

func TestRunAllSectionsRender(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "all", fastOpts, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"==== 4 —", "==== 5 —", "==== 6a —", "==== 6b —",
		"==== 12a —", "==== 12b —", "==== 12b1 —", "==== 12c —",
		"==== table1 —", "==== hw —", "==== gates —", "==== starvation —",
		"==== dynamic —", "==== bridge —", "==== slack —", "==== pipeline —",
		"==== compensation —", "==== burst —", "==== models —",
		"==== tail —", "==== replay —", "==== split —", "==== scale —", "==== adaptation —", "==== wrr —",
		"==== degradation —", "==== babble —",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("section %q missing", want)
		}
	}
}

func TestRunSingleSection(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "hw", fastOpts, ""); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "cell grids") {
		t.Fatalf("hw section:\n%s", out)
	}
	if strings.Contains(out, "==== 4 —") {
		t.Fatal("unrequested section rendered")
	}
}

func TestRunUnknownSection(t *testing.T) {
	var b strings.Builder
	if err := run(&b, "nope", fastOpts, ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestRunWritesCSV(t *testing.T) {
	dir := t.TempDir()
	var b strings.Builder
	if err := run(&b, "table1", fastOpts, dir); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "table1.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "architecture,port1 bw%") {
		t.Fatalf("csv:\n%s", raw)
	}
}
