package simcfg

import (
	"math"
	"strings"
	"testing"

	"lotterybus"
	"lotterybus/internal/analytic"
)

// TestBuildReplicaSetMatchesScalarReplicas pins the -lanes contract:
// for every arbiter kind, replica i of the lane-batched engine reports
// exactly what the scalar replicate loop reports for the same config at
// Seed+i. Reports are compared as rendered strings, which also equates
// the NaN latency fields of starved masters (priority starves the
// periodic master; NaN != NaN would break struct comparison).
func TestBuildReplicaSetMatchesScalarReplicas(t *testing.T) {
	const replicas, cycles = 3, 10000
	for _, kind := range []string{"lottery", "dynamic-lottery", "compensated-lottery", "priority", "tdma", "tdma1", "round-robin", "token-ring"} {
		cfg := SampleConfig()
		cfg.Cycles = cycles
		cfg.Arbiter.Kind = kind
		rs, err := cfg.BuildReplicaSet(replicas)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := rs.Run(cfg.Cycles); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		for i := 0; i < replicas; i++ {
			c := *cfg
			c.Seed = cfg.Seed + uint64(i)
			sys, err := c.Build()
			if err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			if err := sys.Run(c.Cycles); err != nil {
				t.Fatalf("%s: %v", kind, err)
			}
			got, want := rs.Report(i).String(), sys.Report().String()
			if got != want {
				t.Errorf("%s replica %d diverges from scalar\nlanes:\n%s\nscalar:\n%s", kind, i, got, want)
			}
			if viol := rs.CheckInvariants(i); len(viol) != 0 {
				t.Errorf("%s replica %d: %s", kind, i, strings.Join(viol, "; "))
			}
		}
	}
}

// TestBuildReplicaSetRejects pins the clear-error contract for configs
// the lane engine cannot run.
func TestBuildReplicaSetRejects(t *testing.T) {
	cfg := SampleConfig()
	cfg.Faults = &lotterybus.FaultConfig{SlaveError: 0.01}
	if _, err := cfg.BuildReplicaSet(2); err == nil || !strings.Contains(err.Error(), "fault") {
		t.Errorf("faulted config: error %v, want fault-injection rejection", err)
	}

	cfg = SampleConfig()
	cfg.Seed = 0
	if _, err := cfg.BuildReplicaSet(2); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Errorf("seed 0: error %v, want seed rejection", err)
	}

	cfg = SampleConfig()
	cfg.Arbiter.Kind = "fcfs"
	if _, err := cfg.BuildReplicaSet(2); err == nil {
		t.Error("unknown arbiter accepted")
	}

	// Watchdog/starvation configs build but fail loudly at Run.
	cfg = SampleConfig()
	cfg.Cycles = 100
	cfg.Resilience = &ResilienceConfig{SplitTimeout: 500}
	rs, err := cfg.BuildReplicaSet(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.Run(cfg.Cycles); err == nil || !strings.Contains(err.Error(), "SplitTimeout") {
		t.Errorf("split watchdog: error %v, want SplitTimeout rejection", err)
	}
}

// TestAnalyticPointClassification pins the config-to-regime mapping the
// -no-analytic A/B flag toggles.
func TestAnalyticPointClassification(t *testing.T) {
	saturated := func() *SimConfig {
		return &SimConfig{
			Cycles: 1000, Seed: 7, MaxBurst: 16,
			Arbiter: ArbiterConfig{Kind: "lottery"},
			Slaves:  []SlaveConfig{{Name: "mem"}},
			Masters: []MasterConfig{
				{Name: "a", Weight: 3, Traffic: TrafficConfig{Kind: "saturating", MsgWords: 16}},
				{Name: "b", Weight: 1, Traffic: TrafficConfig{Kind: "saturating", MsgWords: 16}},
			},
		}
	}

	cfg := saturated()
	pt, ok := cfg.AnalyticPoint()
	if !ok {
		t.Fatal("clean config not classifiable")
	}
	if r := analytic.Classify(pt); r != analytic.Saturated {
		t.Fatalf("saturated config classifies %v", r)
	}
	shares, _, err := analytic.SaturatedShares(pt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(shares[0]-0.75) > 1e-12 || math.Abs(shares[1]-0.25) > 1e-12 {
		t.Fatalf("shares %v, want ticket fractions 0.75/0.25", shares)
	}

	// The mixed sample config must simulate.
	if pt, ok := SampleConfig().AnalyticPoint(); !ok {
		t.Fatal("sample config not classifiable")
	} else if r := analytic.Classify(pt); r != analytic.Mixed {
		t.Fatalf("sample config classifies %v", r)
	}

	// All-silent masters are provably idle.
	idle := saturated()
	for i := range idle.Masters {
		idle.Masters[i].Traffic = TrafficConfig{Kind: "none"}
	}
	if pt, ok := idle.AnalyticPoint(); !ok {
		t.Fatal("idle config not classifiable")
	} else if r := analytic.Classify(pt); r != analytic.Idle {
		t.Fatalf("idle config classifies %v", r)
	}

	// Wait states break the saturated closed form: mixed, so simulated.
	waity := saturated()
	waity.Slaves[0].WaitStates = 2
	if pt, ok := waity.AnalyticPoint(); !ok {
		t.Fatal("wait-state config not classifiable")
	} else if r := analytic.Classify(pt); r != analytic.Mixed {
		t.Fatalf("wait-state config classifies %v", r)
	}

	// Armed machinery the classifier cannot model disables it entirely.
	faulted := saturated()
	faulted.Faults = &lotterybus.FaultConfig{WordError: 0.1}
	if _, ok := faulted.AnalyticPoint(); ok {
		t.Fatal("faulted config classifiable")
	}
	watched := saturated()
	watched.Resilience = &ResilienceConfig{StarvationThreshold: 100}
	if _, ok := watched.AnalyticPoint(); ok {
		t.Fatal("starvation-armed config classifiable")
	}
}
