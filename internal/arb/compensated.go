package arb

import (
	"fmt"

	"lotterybus/internal/bus"
	"lotterybus/internal/core"
)

// CompensatedLottery extends the lottery arbiter with Waldspurger-Weihl
// compensation tickets (the mechanism from the lottery-scheduling work
// the paper builds on, reference [16]). The plain LOTTERYBUS allocates
// bandwidth proportionally to tickets only when every master transfers
// equal-sized bursts: ticket ratios control the fraction of *grants*,
// and a master whose messages are shorter than the maximum transfer
// size moves fewer words per grant. Compensation repairs this: a winner
// that uses only words w of its quantum q has its effective holding
// inflated by q/w until its next win, so long-run *bandwidth* tracks
// the ticket ratios regardless of message-size mix.
type CompensatedLottery struct {
	mgr     *core.DynamicLottery
	base    []uint64
	quantum int
	// compNum/compDen[i] is the compensation factor q/w of master i's
	// last win, kept as a rational so effective holdings stay integral.
	compNum []uint64
	compDen []uint64
	scratch []uint64
}

// NewCompensatedLottery builds the arbiter over the base ticket
// holdings; quantum must equal the bus's maximum transfer size (the
// words a full grant could move).
func NewCompensatedLottery(base []uint64, quantum int, mgr *core.DynamicLottery) (*CompensatedLottery, error) {
	if len(base) == 0 {
		return nil, fmt.Errorf("arb: compensated lottery needs masters")
	}
	if mgr == nil || mgr.N() != len(base) {
		return nil, fmt.Errorf("arb: manager size mismatch")
	}
	if quantum <= 0 {
		return nil, fmt.Errorf("arb: quantum must be positive")
	}
	for i, t := range base {
		if t == 0 {
			return nil, fmt.Errorf("arb: master %d has zero tickets", i)
		}
		if t > 1<<24 {
			return nil, fmt.Errorf("arb: ticket count %d too large for compensation scaling", t)
		}
	}
	c := &CompensatedLottery{
		mgr:     mgr,
		base:    append([]uint64(nil), base...),
		quantum: quantum,
		compNum: make([]uint64, len(base)),
		compDen: make([]uint64, len(base)),
		scratch: make([]uint64, len(base)),
	}
	for i := range c.compNum {
		c.compNum[i], c.compDen[i] = 1, 1
	}
	return c, nil
}

// Name identifies the scheme.
func (c *CompensatedLottery) Name() string { return "lottery-compensated" }

// EffectiveTickets returns the current compensated holdings (for
// inspection and tests).
func (c *CompensatedLottery) EffectiveTickets() []uint64 {
	out := make([]uint64, len(c.base))
	for i := range c.base {
		out[i] = c.effective(i)
	}
	return out
}

// effective returns master i's live holding: base[i] scaled by its
// compensation rational q/w (1/1 for a master whose last win used its
// full quantum), floored at one ticket so integer division can never
// erase a holding.
func (c *CompensatedLottery) effective(i int) uint64 {
	e := c.base[i] * c.compNum[i] / c.compDen[i]
	if e == 0 {
		e = 1
	}
	return e
}

// Arbitrate draws one lottery over the compensated holdings and updates
// the winner's compensation from its quantum usage.
func (c *CompensatedLottery) Arbitrate(_ int64, req bus.Requests) (bus.Grant, bool) {
	for i := range c.base {
		c.scratch[i] = c.effective(i)
	}
	w := c.mgr.DrawSet(req.Mask(), c.scratch)
	if w == core.NoWinner {
		return bus.Grant{}, false
	}
	used := req.PendingWords(w)
	if used > c.quantum {
		used = c.quantum
	}
	if used <= 0 {
		used = 1
	}
	// Waldspurger compensation: inflate by q/used until the next win.
	c.compNum[w] = uint64(c.quantum)
	c.compDen[w] = uint64(used)
	return bus.Grant{Master: w, Words: used}, true
}
