package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"lotterybus/internal/cache"
	"lotterybus/internal/obs"
	"lotterybus/internal/runner"
	"lotterybus/internal/simcfg"
)

// Options configures a Server. The zero value is usable: memory-only
// cache, no WAL (no crash recovery), queue of 256, two dispatch
// workers, and a private metrics registry.
type Options struct {
	// CacheDir backs the shared result cache on disk; "" keeps results
	// in memory only (still deduplicated, not crash-durable).
	CacheDir string
	// DataDir holds the write-ahead job journal; "" disables crash
	// recovery (accepted jobs die with the process).
	DataDir string
	// QueueCap bounds the total queued jobs across all clients
	// (default 256). Beyond it, submissions shed with 429.
	QueueCap int
	// PerClientCap bounds one client's queued jobs (default QueueCap/4)
	// so a flooding tenant cannot occupy the whole queue; a backlogged
	// client then refills exactly as fast as the admission lottery
	// drains it, and completion shares track the ticket ratio.
	PerClientCap int
	// Jobs is the number of concurrent job dispatch workers (default 2).
	Jobs int
	// ReplicaWorkers sizes each job's replica pool (default: all cores).
	ReplicaWorkers int
	// Limits bounds a single request (see Limits).
	Limits Limits
	// MaxBodyBytes caps a request body (default 1 MiB).
	MaxBodyBytes int64
	// JobTimeout is the per-job wall-clock budget; 0 means no limit.
	JobTimeout time.Duration
	// Tickets assigns per-client lottery ticket holdings for admission
	// control; clients not listed hold DefaultTickets (default 1).
	Tickets        map[string]uint64
	DefaultTickets uint64
	// AdmissionSeed fixes the admission lottery's draw stream (default 1)
	// so scheduling is reproducible.
	AdmissionSeed uint64
	// Registry receives serve metrics; nil uses a private registry.
	Registry *obs.Registry
	// Journal receives lifecycle events; nil disables.
	Journal *obs.Journal
	// Health, when non-nil, gains the server's readiness checks
	// (queue saturation, WAL writability, cache-dir writability,
	// draining).
	Health *obs.Health
	// Clock supplies wall time to every piece of serve instrumentation
	// (spans, latency histograms, the Retry-After service estimate).
	// Defaults to obs.Now; tests inject deterministic clocks here.
	Clock func() time.Time
	// SlowJob is the total-latency threshold beyond which a finished
	// job's full span tree is journaled as a slow_job event; 0 disables.
	SlowJob time.Duration
	// TraceMaxSpans bounds one job's span tree (default
	// obs.DefaultMaxSpans); past it spans are counted as dropped.
	TraceMaxSpans int
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 256
	}
	if o.Jobs <= 0 {
		o.Jobs = 2
	}
	o.ReplicaWorkers = runner.Workers(o.ReplicaWorkers)
	o.Limits = o.Limits.withDefaults()
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.DefaultTickets == 0 {
		o.DefaultTickets = 1
	}
	if o.AdmissionSeed == 0 {
		o.AdmissionSeed = 1
	}
	if o.Clock == nil {
		o.Clock = obs.Now
	}
	return o
}

// serveMetrics is the server's observability surface in the obs
// registry.
type serveMetrics struct {
	reg            *obs.Registry
	retried        *obs.Counter
	canceled       *obs.Counter
	failed         *obs.Counter
	recovered      *obs.Counter
	queueDepth     *obs.Gauge
	queueHighWater *obs.Gauge
	admissionSec   *obs.Histogram
	queueWaitSec   *obs.Histogram
	runSec         *obs.Histogram
	totalSec       *obs.Histogram
	walAppendSec   *obs.Histogram
	cacheMisses    *obs.Counter
	streamFlushes  *obs.Counter
	slowJobs       *obs.Counter
	spansDropped   *obs.Counter
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	sec := obs.SecondsBuckets()
	return &serveMetrics{
		reg:            reg,
		retried:        reg.Counter("lotterybus_serve_retries_total", "transient-failure retries", nil),
		canceled:       reg.Counter("lotterybus_serve_canceled_total", "jobs canceled by clients", nil),
		failed:         reg.Counter("lotterybus_serve_failed_total", "jobs that ended failed", nil),
		recovered:      reg.Counter("lotterybus_serve_recovered_total", "jobs re-enqueued from the WAL", nil),
		queueDepth:     reg.Gauge("lotterybus_serve_queue_depth", "jobs currently queued", nil),
		queueHighWater: reg.Gauge("lotterybus_serve_queue_high_water", "queue depth high-water mark", nil),
		admissionSec:   reg.Histogram("lotterybus_serve_admission_seconds", "submit-to-202 latency (parse, enqueue, WAL accept)", nil, sec),
		queueWaitSec:   reg.Histogram("lotterybus_serve_queue_wait_seconds", "accept-to-dispatch queue wait", nil, sec),
		runSec:         reg.Histogram("lotterybus_serve_run_seconds", "dispatch-to-terminal execution time", nil, sec),
		totalSec:       reg.Histogram("lotterybus_serve_total_seconds", "submit-to-terminal total job latency", nil, sec),
		walAppendSec:   reg.Histogram("lotterybus_serve_wal_append_seconds", "WAL append+fsync latency", nil, sec),
		cacheMisses:    reg.Counter("lotterybus_serve_job_cache_misses_total", "replica results simulated fresh", nil),
		streamFlushes:  reg.Counter("lotterybus_serve_stream_flushes_total", "JSONL stream flush batches", nil),
		slowJobs:       reg.Counter("lotterybus_serve_slow_jobs_total", "jobs exceeding the -slow-job threshold", nil),
		spansDropped:   reg.Counter("lotterybus_serve_trace_spans_dropped_total", "spans lost to per-job trace bounds", nil),
	}
}

func (m *serveMetrics) admitted(client string) *obs.Counter {
	return m.reg.Counter("lotterybus_serve_admitted_total", "jobs admitted", obs.Labels{"client": client})
}

func (m *serveMetrics) shed(client string) *obs.Counter {
	return m.reg.Counter("lotterybus_serve_shed_total", "jobs shed with 429", obs.Labels{"client": client})
}

func (m *serveMetrics) completed(client string) *obs.Counter {
	return m.reg.Counter("lotterybus_serve_completed_total", "jobs completed", obs.Labels{"client": client})
}

func (m *serveMetrics) retryAfterSeconds(client string) *obs.Counter {
	return m.reg.Counter("lotterybus_serve_retry_after_seconds_total", "Retry-After seconds handed out with 429s", obs.Labels{"client": client})
}

func (m *serveMetrics) ticketShare(client string) *obs.Gauge {
	return m.reg.Gauge("lotterybus_serve_ticket_share", "client's share of admission lottery tickets", obs.Labels{"client": client})
}

func (m *serveMetrics) completedShare(client string) *obs.Gauge {
	return m.reg.Gauge("lotterybus_serve_completed_share", "client's share of completed jobs", obs.Labels{"client": client})
}

func (m *serveMetrics) cacheHits(source string) *obs.Counter {
	return m.reg.Counter("lotterybus_serve_job_cache_hits_total", "replica results replayed from the cache", obs.Labels{"source": source})
}

// maxRetainedJobs bounds how many terminal jobs stay queryable before
// the oldest are forgotten.
const maxRetainedJobs = 4096

// Server is the hardened simulation job server. Build one with New,
// start its dispatchers with Start, mount Handler on an HTTP listener,
// and stop it with Drain (graceful) or Abort (crash-stop, for tests).
type Server struct {
	opts    Options
	adm     *admitter
	wal     *wal
	cache   *cache.Cache
	journal *obs.Journal
	m       *serveMetrics
	clock   func() time.Time

	rootCtx    context.Context
	rootCancel context.CancelFunc
	wg         sync.WaitGroup
	draining   atomic.Bool

	mu   sync.Mutex
	jobs map[string]*Job
	done []string // terminal job IDs, oldest first, for retention
	seq  int64

	// svcEWMA tracks seconds per successful job — the Retry-After
	// estimate's service-time input. Zero means no samples yet.
	svcMu   sync.Mutex
	svcEWMA float64

	// clients accumulates per-client lifecycle counters for /v1/stats;
	// key set = every client name seen by submit or recovery.
	clientMu sync.Mutex
	clients  map[string]*clientCounters

	// execHook replaces execute in tests (stubbed job bodies for
	// scheduling-behavior tests that should not burn simulation time).
	execHook func(ctx context.Context, job *Job) error
}

// clientCounters is one client's lifecycle tally, served by /v1/stats.
// Ticket holdings and the labelled metric handles are resolved once at
// registration: the submit and completion paths touch them per request,
// and registry lookups (label formatting under the registry lock) are
// contended enough under overload to throttle the flood the admission
// lottery is supposed to be scheduling.
type clientCounters struct {
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Canceled  int64 `json:"canceled"`
	Failed    int64 `json:"failed"`

	tickets        uint64
	admitted       *obs.Counter
	shed           *obs.Counter
	retryAfterSec  *obs.Counter
	ticketShare    *obs.Gauge
	completedShare *obs.Gauge
}

// New builds a Server: opens (and compacts) the WAL, re-enqueues every
// accepted-but-unfinished job from it, and registers readiness checks.
// Dispatch workers do not run until Start.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	adm, err := newAdmitter(opts.QueueCap, opts.PerClientCap, opts.Tickets, opts.DefaultTickets, opts.AdmissionSeed)
	if err != nil {
		return nil, err
	}
	adm.clock = opts.Clock
	s := &Server{
		opts:    opts,
		adm:     adm,
		journal: opts.Journal,
		m:       newServeMetrics(opts.Registry),
		clock:   opts.Clock,
		jobs:    make(map[string]*Job),
		clients: make(map[string]*clientCounters),
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	if opts.CacheDir != "" {
		// Create the directory up front so the writability readiness
		// check probes the real volume, not a not-yet-existing path.
		if err := os.MkdirAll(opts.CacheDir, 0o755); err != nil {
			return nil, fmt.Errorf("serve: cache dir: %w", err)
		}
		s.cache = cache.New(opts.CacheDir)
	} else {
		s.cache = cache.New("")
	}
	if opts.DataDir != "" {
		w, pending, maxID, err := openWAL(opts.DataDir)
		if err != nil {
			return nil, err
		}
		s.wal = w
		s.seq = maxID
		for _, rec := range pending {
			job, err := jobFromWAL(rec)
			if err != nil {
				// A WAL accept that no longer parses cannot re-run;
				// end it so it stops resurfacing.
				s.journal.Emit("recover_failed", map[string]any{"id": rec.ID, "error": err.Error()})
				_ = s.wal.appendEnd(rec.ID, StateFailed, "recovery: "+err.Error())
				continue
			}
			// A recovered job's pre-crash spans are gone with the old
			// process; its new trace starts at recovery, marked so.
			// Wired before enqueue like handleSubmit, though workers
			// only start after New returns.
			job.trace = obs.NewTrace(job.ID, s.clock, opts.TraceMaxSpans)
			job.acceptedAt = s.clock()
			job.trace.AddSpan("recovered", nil, 0, job.acceptedAt, 0, nil)
			if err := s.adm.enqueue(job, true); err != nil {
				s.journal.Emit("recover_failed", map[string]any{"id": rec.ID, "error": err.Error()})
				continue
			}
			s.mu.Lock()
			s.jobs[job.ID] = job
			s.mu.Unlock()
			s.m.recovered.Add(1)
			s.journal.Emit("job_recovered", map[string]any{"id": job.ID, "client": job.Client})
		}
	}
	if opts.Health != nil {
		opts.Health.SetReadiness("serve-queue", func() error {
			if s.adm.saturated() {
				return fmt.Errorf("job queue saturated")
			}
			return nil
		})
		opts.Health.SetReadiness("serve-wal", s.wal.writable)
		if opts.CacheDir != "" {
			opts.Health.SetReadiness("serve-cache", s.cache.Writable)
		}
		opts.Health.SetReadiness("serve-draining", func() error {
			if s.draining.Load() {
				return fmt.Errorf("draining")
			}
			return nil
		})
	}
	return s, nil
}

// jobFromWAL rebuilds a job from its accept record. The stored config
// bytes are canonical — a fixed point of the strict parser — so the
// rebuilt job is exactly the one that was accepted.
func jobFromWAL(rec walRecord) (*Job, error) {
	cfg, err := simcfg.ParseConfig(bytes.NewReader(rec.Config))
	if err != nil {
		return nil, err
	}
	canonical, err := cfg.Canonical()
	if err != nil {
		return nil, err
	}
	replicate := rec.Replicate
	if replicate < 1 {
		replicate = 1
	}
	return &Job{
		ID:        rec.ID,
		Client:    rec.Client,
		Replicate: replicate,
		Lanes:     rec.Lanes,
		Canonical: canonical,
		cfg:       cfg,
		state:     StateQueued,
		notify:    make(chan struct{}),
	}, nil
}

// Start launches the dispatch workers. Each worker loops: draw the
// admission lottery for the next job, run it, repeat — until drain.
func (s *Server) Start() {
	for i := 0; i < s.opts.Jobs; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				job, drawDur, ok := s.adm.next()
				if !ok {
					return
				}
				queued, _, _ := s.adm.depth()
				s.m.queueDepth.Set(float64(queued))
				s.runJob(job, drawDur)
			}
		}()
	}
}

// Cache exposes the server's result cache (shared with any sibling
// lotterysim runs pointed at the same directory).
func (s *Server) Cache() *cache.Cache { return s.cache }

// Handler returns the job API mux:
//
//	POST   /v1/jobs             submit  -> 202 {"id":...} | 400 | 429 | 503
//	GET    /v1/jobs/{id}        status  -> 200 JobStatus | 404
//	DELETE /v1/jobs/{id}        cancel  -> 202 JobStatus | 404
//	GET    /v1/jobs/{id}/stream JSONL event stream (replay + follow)
//	GET    /v1/jobs/{id}/trace  Chrome trace-event JSON span tree
//	GET    /v1/stats            queue/cache/job/client counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.handleTrace)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// handleTrace serves a job's span tree as Chrome trace-event JSON —
// loadable directly in chrome://tracing or Perfetto.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	job.trace.WriteChrome(w)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		http.Error(w, "draining, not accepting jobs", http.StatusServiceUnavailable)
		return
	}
	// One clock read up front; the admit span is recorded retroactively
	// right before enqueue publishes the job. Under overload the shed
	// path runs at flood rate, so it must stay cheap: a shed request
	// pays one trace allocation and no span bookkeeping beyond the
	// single admit record.
	t0 := s.clock()
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	job, err := ParseJob(body, s.opts.Limits)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	s.seq++
	job.ID = fmt.Sprintf("j%d", s.seq)
	s.mu.Unlock()
	job.trace = obs.NewTrace(job.ID, s.clock, s.opts.TraceMaxSpans)
	// Record the accepted event before the job becomes reachable by a
	// dispatch worker, so stream replay always starts with it — a warm
	// job can otherwise finish before this handler gets back to it. A
	// shed job is discarded whole, so the early event leaves no trace.
	job.emit("accepted", map[string]any{"client": job.Client})
	// The admit span and queue-wait anchor must be in place before
	// enqueue publishes the job: a worker may dispatch it (and fold the
	// trace into its terminal event) before this handler runs another
	// line.
	job.acceptedAt = s.clock()
	admitSpan := job.trace.AddSpan("admit", nil, 0, t0, job.acceptedAt.Sub(t0), nil)
	// Reserve the queue slot first: shedding must happen before any
	// durable write, so a 429 leaves no trace to recover.
	if err := s.adm.enqueue(job, false); err != nil {
		switch err {
		case ErrDraining:
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		default:
			retryAfter := s.retryAfter()
			c := s.bumpClient(job.Client, func(c *clientCounters) { c.Shed++ })
			c.shed.Add(1)
			c.retryAfterSec.Add(int64(retryAfter))
			s.journal.Emit("job_shed", map[string]any{"client": job.Client})
			w.Header().Set("Retry-After", fmt.Sprintf("%d", retryAfter))
			http.Error(w, err.Error(), http.StatusTooManyRequests)
		}
		return
	}
	// Durably journal the accept before acknowledging: after the 202 the
	// job survives a crash of this process.
	walStart := s.clock()
	err = s.wal.appendAccept(job)
	walDur := s.clock().Sub(walStart)
	if err != nil {
		s.adm.remove(job)
		http.Error(w, "journal write failed: "+err.Error(), http.StatusServiceUnavailable)
		return
	}
	if s.wal != nil {
		s.m.walAppendSec.Observe(walDur.Seconds())
		job.trace.AddSpan("wal_accept", admitSpan, 0, walStart, walDur, nil)
	}
	s.mu.Lock()
	s.jobs[job.ID] = job
	s.mu.Unlock()
	c := s.bumpClient(job.Client, nil) // make the client visible to /v1/stats
	c.admitted.Add(1)
	queued, maxQueued, _ := s.adm.depth()
	s.m.queueDepth.Set(float64(queued))
	s.m.queueHighWater.Set(float64(maxQueued))
	s.m.admissionSec.Observe(s.clock().Sub(t0).Seconds())
	s.journal.Emit("job_accepted", map[string]any{"id": job.ID, "client": job.Client, "replicate": job.Replicate})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(job.Status())
}

// bumpClient applies fn to the client's counter record under lock,
// creating the record on first sight (fn may be nil to only register).
func (s *Server) bumpClient(client string, fn func(*clientCounters)) *clientCounters {
	s.clientMu.Lock()
	c := s.clients[client]
	if c == nil {
		c = &clientCounters{
			tickets:        s.adm.weightOf(client),
			admitted:       s.m.admitted(client),
			shed:           s.m.shed(client),
			retryAfterSec:  s.m.retryAfterSeconds(client),
			ticketShare:    s.m.ticketShare(client),
			completedShare: s.m.completedShare(client),
		}
		s.clients[client] = c
	}
	if fn != nil {
		fn(c)
	}
	s.clientMu.Unlock()
	return c
}

// observeService folds one successful job's execution time into the
// service-time EWMA behind the Retry-After estimate.
func (s *Server) observeService(d time.Duration) {
	sec := d.Seconds()
	if sec <= 0 {
		return
	}
	s.svcMu.Lock()
	if s.svcEWMA == 0 {
		s.svcEWMA = sec
	} else {
		s.svcEWMA = 0.75*s.svcEWMA + 0.25*sec
	}
	s.svcMu.Unlock()
}

// serviceSeconds returns the current per-job service-time estimate,
// defaulting to one second before any job has completed.
func (s *Server) serviceSeconds() float64 {
	s.svcMu.Lock()
	defer s.svcMu.Unlock()
	if s.svcEWMA <= 0 {
		return 1
	}
	return s.svcEWMA
}

// estimateRetryAfter estimates seconds until the queue has room for a
// backlog of queued jobs: backlog times the measured per-job service
// time, divided by dispatch width, clamped to [1, 60]. Monotone
// nondecreasing in the backlog.
func (s *Server) estimateRetryAfter(queued int) int {
	est := int(math.Ceil(float64(queued) * s.serviceSeconds() / float64(s.opts.Jobs)))
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return est
}

// retryAfter estimates seconds until the queue has room, from the
// current backlog.
func (s *Server) retryAfter() int {
	queued, _, _ := s.adm.depth()
	return s.estimateRetryAfter(queued)
}

func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	if s.adm.remove(job) {
		// Still queued: cancel is immediate and terminal here.
		if !job.acceptedAt.IsZero() {
			job.trace.AddSpan("queue_wait", nil, 0, job.acceptedAt, s.clock().Sub(job.acceptedAt), nil)
		}
		if job.terminate(StateCanceled, "canceled by client", "canceled", nil) {
			s.walEnd(job, StateCanceled, "canceled by client")
			s.m.canceled.Add(1)
			s.bumpClient(job.Client, func(c *clientCounters) { c.Canceled++ })
			s.finishJob(job)
		}
		queued, _, _ := s.adm.depth()
		s.m.queueDepth.Set(float64(queued))
	} else {
		// Running (or between dequeue and context wiring): flag it; the
		// run loop observes the cancellation at the next chunk boundary.
		job.requestCancel()
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(job.Status())
}

func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	from := 0
	for {
		evs, next, ch, terminal := job.follow(from)
		if len(evs) > 0 {
			flushStart := s.clock()
			for _, e := range evs {
				w.Write(e)
				w.Write([]byte("\n"))
			}
			if flusher != nil {
				flusher.Flush()
			}
			s.m.streamFlushes.Add(1)
			job.trace.AddSpan("stream_flush", nil, 0, flushStart, s.clock().Sub(flushStart),
				map[string]any{"events": len(evs)})
		}
		from = next
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		case <-s.rootCtx.Done():
			return
		}
	}
}

// ClientStats is one client's row in /v1/stats: lifecycle counters,
// configured lottery ticket holdings, and current queue occupancy.
type ClientStats struct {
	Completed int64  `json:"completed"`
	Shed      int64  `json:"shed"`
	Canceled  int64  `json:"canceled"`
	Failed    int64  `json:"failed"`
	Tickets   uint64 `json:"tickets"`
	Queued    int    `json:"queued"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	queued, maxQueued, capacity := s.adm.depth()
	s.mu.Lock()
	counts := map[JobState]int{}
	for _, j := range s.jobs {
		counts[j.State()]++
	}
	s.mu.Unlock()
	clients := map[string]ClientStats{}
	s.clientMu.Lock()
	for name, c := range s.clients {
		clients[name] = ClientStats{
			Completed: c.Completed,
			Shed:      c.Shed,
			Canceled:  c.Canceled,
			Failed:    c.Failed,
			Tickets:   s.adm.weightOf(name),
			Queued:    s.adm.queuedFor(name),
		}
	}
	s.clientMu.Unlock()
	var body struct {
		Queue struct {
			Depth    int `json:"depth"`
			MaxDepth int `json:"max_depth"`
			Capacity int `json:"capacity"`
		} `json:"queue"`
		Jobs    map[JobState]int       `json:"jobs"`
		Clients map[string]ClientStats `json:"clients"`
		Cache   cache.Stats            `json:"cache"`
	}
	body.Queue.Depth = queued
	body.Queue.MaxDepth = maxQueued
	body.Queue.Capacity = capacity
	body.Jobs = counts
	body.Clients = clients
	body.Cache = s.cache.Stats()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(body)
}

// updateShares refreshes the per-client ticket-share vs completed-share
// gauges over every client seen so far — the metric form of the
// overload test's "completed throughput tracks ticket ratio" claim.
func (s *Server) updateShares() {
	type row struct {
		done           int64
		tickets        uint64
		ticketShare    *obs.Gauge
		completedShare *obs.Gauge
	}
	s.clientMu.Lock()
	rows := make([]row, 0, len(s.clients))
	var totalDone int64
	var totalTickets uint64
	for _, c := range s.clients {
		rows = append(rows, row{c.Completed, c.tickets, c.ticketShare, c.completedShare})
		totalDone += c.Completed
		totalTickets += c.tickets
	}
	s.clientMu.Unlock()
	// Gauge sets are lock-free atomics; do them off the client lock so a
	// burst of completions never stalls the submit path behind it.
	for _, r := range rows {
		if totalTickets > 0 {
			r.ticketShare.Set(float64(r.tickets) / float64(totalTickets))
		}
		if totalDone > 0 {
			r.completedShare.Set(float64(r.done) / float64(totalDone))
		}
	}
}

// finishJob records retention and the journal beat after a job reaches
// its final (or interrupted) state.
func (s *Server) finishJob(job *Job) {
	state := job.State()
	s.journal.Emit("job_"+string(state), map[string]any{"id": job.ID, "client": job.Client})
	if !state.Terminal() {
		return // interrupted: stays queryable, re-runs on restart
	}
	s.mu.Lock()
	s.done = append(s.done, job.ID)
	for len(s.done) > maxRetainedJobs {
		delete(s.jobs, s.done[0])
		s.done = s.done[1:]
	}
	s.mu.Unlock()
}

// Drain gracefully stops the server: stop admitting (submissions get
// 503, readiness fails), let in-flight jobs finish, then flush and
// close the WAL. If ctx expires first, in-flight jobs are interrupted
// at their next chunk boundary and deliberately keep their WAL accept
// records — the next start resumes them, replaying finished replicas
// from the cache.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	s.journal.Emit("drain_begin", nil)
	s.adm.drain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	forced := false
	select {
	case <-done:
	case <-ctx.Done():
		forced = true
		s.rootCancel()
		<-done
	}
	err := s.wal.close()
	s.journal.Emit("drain_end", map[string]any{"forced": forced})
	s.rootCancel()
	return err
}

// Abort crash-stops the server: cancel everything in flight and close
// the WAL without writing end records, exactly as a kill -9 would leave
// it. Tests use it to exercise recovery.
func (s *Server) Abort() {
	s.draining.Store(true)
	s.rootCancel()
	s.adm.drain()
	s.wg.Wait()
	s.wal.close()
}
