package serve

import (
	"context"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lotterybus/internal/obs"
)

// TestOverloadLotteryShares floods the server past queue capacity from
// two clients holding 2:1 lottery tickets and checks the robustness
// contract end to end: the server never crashes or 500s, every refusal
// is a 429 with Retry-After, the queue stays bounded, and completed
// throughput splits by the ticket ratio — the paper's proportional-
// bandwidth claim, measured on the API instead of the bus.
func TestOverloadLotteryShares(t *testing.T) {
	const (
		perClient = 2000 // 4000 total submissions, well past capacity
		flooders  = 8    // concurrent submitters per client
	)
	s, ts := newTestServer(t, Options{
		QueueCap:     64,
		PerClientCap: 32,
		Jobs:         4,
		Tickets:      map[string]uint64{"alice": 2, "bob": 1},
	})
	// Stub the job body: scheduling behavior is under test, not the
	// simulator. Each job costs a fixed slice of wall clock, sized so
	// the flood outruns the service rate and the queue saturates.
	s.execHook = func(ctx context.Context, job *Job) error {
		select {
		case <-time.After(5 * time.Millisecond):
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}

	var accepted, shed [2]atomic.Int64
	var badStatus atomic.Int64
	var missingRetryAfter atomic.Int64
	clients := []string{"alice", "bob"}
	var wg sync.WaitGroup
	for ci, client := range clients {
		body := submitBody(client, 1, false)
		per := perClient / flooders
		for f := 0; f < flooders; f++ {
			wg.Add(1)
			go func(ci int) {
				defer wg.Done()
				for i := 0; i < per; i++ {
					resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
					if err != nil {
						badStatus.Add(1)
						continue
					}
					switch resp.StatusCode {
					case http.StatusAccepted:
						accepted[ci].Add(1)
					case http.StatusTooManyRequests:
						shed[ci].Add(1)
						if resp.Header.Get("Retry-After") == "" {
							missingRetryAfter.Add(1)
						}
					default:
						badStatus.Add(1)
					}
					resp.Body.Close()
				}
			}(ci)
		}
		_ = ci
	}
	wg.Wait()

	if n := badStatus.Load(); n != 0 {
		t.Fatalf("%d responses were neither 202 nor 429", n)
	}
	if n := missingRetryAfter.Load(); n != 0 {
		t.Fatalf("%d of the 429s lacked a Retry-After header", n)
	}
	totalShed := shed[0].Load() + shed[1].Load()
	if totalShed == 0 {
		t.Fatal("flood never saturated the queue; overload path untested")
	}
	if _, maxDepth, _ := s.adm.depth(); maxDepth > 64 {
		t.Fatalf("queue high-water %d exceeded capacity 64", maxDepth)
	}

	// Let the accepted backlog drain, then compare completed work.
	deadline := obs.Now().Add(10 * time.Second)
	for {
		if q, _, _ := s.adm.depth(); q == 0 {
			break
		}
		if obs.Now().After(deadline) {
			t.Fatal("backlog did not drain")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// depth()==0 can race the last dispatched jobs; settle briefly.
	time.Sleep(50 * time.Millisecond)

	doneA := s.m.completed("alice").Value()
	doneB := s.m.completed("bob").Value()
	if doneA+doneB != accepted[0].Load()+accepted[1].Load() {
		t.Fatalf("completed %d+%d != accepted %d+%d (lost or duplicated jobs)",
			doneA, doneB, accepted[0].Load(), accepted[1].Load())
	}
	share := float64(doneA) / float64(doneA+doneB)
	want := 2.0 / 3.0
	if share < want*0.9 || share > want*1.1 {
		t.Fatalf("alice completion share %.3f outside 2/3 ±10%% (alice %d, bob %d, shed %d)",
			share, doneA, doneB, totalShed)
	}
	t.Logf("accepted alice=%d bob=%d shed=%d share=%.3f", doneA, doneB, totalShed, share)
}

// TestRetryAfterScalesWithBacklog checks the backpressure hint is a
// live estimate, not a constant.
func TestRetryAfterScalesWithBacklog(t *testing.T) {
	s, err := New(Options{QueueCap: 200, PerClientCap: 200, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Abort()
	for i := 0; i < 120; i++ {
		if err := s.adm.enqueue(testJob("c"), false); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.retryAfter(); got != 60 {
		t.Fatalf("retryAfter with 120 queued over 2 workers = %d, want 60 (clamped)", got)
	}
	s2, err := New(Options{QueueCap: 200, Jobs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Abort()
	if got := s2.retryAfter(); got != 1 {
		t.Fatalf("retryAfter with empty queue = %d, want 1", got)
	}
}
