package hw

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"lotterybus/internal/core"
	"lotterybus/internal/lfsr"
	"lotterybus/internal/prng"
)

// streamSource replays a fixed word sequence as both a hw.WordSource and
// a prng.Source, so a structural model and a behavioural manager can be
// driven from the identical random stream.
type streamSource struct {
	words []uint64
	pos   int
}

func (s *streamSource) Word() uint64 { v := s.words[s.pos%len(s.words)]; s.pos++; return v }

func (s *streamSource) Uint64() uint64 { return s.Word() }

func recordedWords(n int, width uint, seed uint64) []uint64 {
	g := lfsr.MustGalois(width, seed)
	out := make([]uint64, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

func TestStaticManagerValidation(t *testing.T) {
	src := LFSRSource{Reg: lfsr.MustGalois(16, 1)}
	if _, err := NewStaticManager(nil, 16, core.PolicyRedraw, src); err == nil {
		t.Fatal("empty tickets accepted")
	}
	if _, err := NewStaticManager([]uint64{1, 2}, 16, core.PolicyRedraw, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := NewStaticManager([]uint64{1, 2}, 16, core.PolicyExact, src); err == nil {
		t.Fatal("exact policy accepted by comparator-only hardware")
	}
	if _, err := NewStaticManager(make([]uint64, 13), 16, core.PolicyRedraw, src); err == nil {
		t.Fatal("13 masters accepted")
	}
}

func TestStaticManagerLUTMatchesCore(t *testing.T) {
	tickets := []uint64{1, 2, 3, 4}
	m, err := NewStaticManager(tickets, 6, core.PolicyRedraw, LFSRSource{Reg: lfsr.MustGalois(6, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewStaticLottery(core.StaticConfig{
		Tickets: tickets,
		Source:  prng.NewXorShift64Star(1),
		Policy:  core.PolicyRedraw,
		Width:   6,
	})
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint64(0); mask < 16; mask++ {
		hwRow := m.LUTRow(mask)
		coreRow := ref.RangeTable(mask)
		for i := range hwRow {
			if hwRow[i] != coreRow[i] {
				t.Fatalf("mask %04b entry %d: hw %d, core %d", mask, i, hwRow[i], coreRow[i])
			}
		}
	}
}

func TestStaticEquivalenceWithCore(t *testing.T) {
	// The headline verification: the structural Fig. 9 datapath and the
	// behavioural manager issue identical grants from the same random
	// word stream, for both hardware slack policies, across every
	// request map.
	tickets := []uint64{3, 1, 5, 2}
	const width = 8
	for _, policy := range []core.SlackPolicy{core.PolicyRedraw, core.PolicyAbsorbLast} {
		words := recordedWords(4000, width, 77)
		hwSrc := &streamSource{words: words}
		coreSrc := &streamSource{words: words}
		m, err := NewStaticManager(tickets, width, policy, hwSrc)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.NewStaticLottery(core.StaticConfig{
			Tickets: tickets,
			Source:  coreSrc,
			Policy:  policy,
			Width:   width,
		})
		if err != nil {
			t.Fatal(err)
		}
		maskSrc := prng.NewXorShift64Star(5)
		for i := 0; i < 4000; i++ {
			mask := prng.Uintn(maskSrc, 16)
			if mask == 0 {
				continue
			}
			gHW := m.Draw(mask)
			gCore := ref.Draw(mask)
			if gHW != gCore {
				t.Fatalf("policy %v draw %d mask %04b: hw granted %d, core granted %d",
					policy, i, mask, gHW, gCore)
			}
		}
	}
}

func TestStaticManagerProportions(t *testing.T) {
	// Driven by a real LFSR, the structural model must deliver grant
	// shares proportional to the scaled holdings.
	tickets := []uint64{1, 2, 3, 4}
	const width = 12
	m, err := NewStaticManager(tickets, width, core.PolicyRedraw, LFSRSource{Reg: lfsr.MustGalois(width, 0xBEE)})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 4)
	granted := 0
	const draws = 80000
	for i := 0; i < draws; i++ {
		if w := m.Draw(0b1111); w != core.NoWinner {
			counts[w]++
			granted++
		}
	}
	if granted < draws*9/10 {
		t.Fatalf("full-map redraw rate too high: %d/%d", granted, draws)
	}
	for i, tk := range tickets {
		want := float64(tk) / 10
		got := float64(counts[i]) / float64(granted)
		if math.Abs(got-want) > 0.015 {
			t.Fatalf("share %d = %.4f, want %.4f", i, got, want)
		}
	}
}

func TestDynamicManagerValidation(t *testing.T) {
	src := LFSRSource{Reg: lfsr.MustGalois(16, 1)}
	if _, err := NewDynamicManager(0, 16, src); err == nil {
		t.Fatal("zero masters accepted")
	}
	if _, err := NewDynamicManager(4, 16, nil); err == nil {
		t.Fatal("nil source accepted")
	}
}

func TestDynamicEquivalenceWithCore(t *testing.T) {
	const width = 16
	words := recordedWords(4000, width, 99)
	hwSrc := &streamSource{words: words}
	coreSrc := &streamSource{words: words}
	m, err := NewDynamicManager(4, width, hwSrc)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewDynamicLottery(core.DynamicConfig{
		Masters: 4,
		Source:  coreSrc,
		Policy:  core.PolicyModulo,
		Width:   width,
	})
	if err != nil {
		t.Fatal(err)
	}
	maskSrc := prng.NewXorShift64Star(6)
	tickets := make([]uint64, 4)
	for i := 0; i < 4000; i++ {
		mask := prng.Uintn(maskSrc, 16)
		for j := range tickets {
			tickets[j] = prng.Uintn(maskSrc, 50) + 1
		}
		gHW := m.Draw(mask, tickets)
		gCore := ref.Draw(mask, tickets)
		if gHW != gCore {
			t.Fatalf("draw %d mask %04b tickets %v: hw %d, core %d", i, mask, tickets, gHW, gCore)
		}
	}
}

func TestDynamicZeroTickets(t *testing.T) {
	m, _ := NewDynamicManager(3, 16, LFSRSource{Reg: lfsr.MustGalois(16, 3)})
	if w := m.Draw(0b110, []uint64{0, 0, 0}); w != 1 {
		t.Fatalf("all-zero tickets: winner %d, want lowest requester 1", w)
	}
	if w := m.Draw(0, []uint64{1, 1, 1}); w != core.NoWinner {
		t.Fatalf("empty mask granted %d", w)
	}
}

func TestDynamicDrawPanicsOnMismatch(t *testing.T) {
	m, _ := NewDynamicManager(3, 16, LFSRSource{Reg: lfsr.MustGalois(16, 3)})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched tickets did not panic")
		}
	}()
	m.Draw(1, []uint64{1})
}

func TestModuloMatchesOperator(t *testing.T) {
	f := func(r uint32, totRaw uint16) bool {
		total := uint64(totRaw) + 1
		return modulo(uint64(r), total) == uint64(r)%total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	if modulo(12345, 0) != 0 {
		t.Fatal("modulo by zero must return 0")
	}
	if modulo(5, 8) != 5 {
		t.Fatal("modulo with r < total must be identity")
	}
}

func TestLFSRSourceNeverZero(t *testing.T) {
	src := LFSRSource{Reg: lfsr.MustGalois(8, 7)}
	for i := 0; i < 1000; i++ {
		if w := src.Word(); w == 0 || w >= 256 {
			t.Fatalf("word %d out of (0, 256)", w)
		}
	}
}

func TestStaticReportCalibration(t *testing.T) {
	// The paper's data point: four masters map to ~1458 cell grids with
	// ~3.06 ns arbitration on the NEC 0.35um array. Our cost table is
	// calibrated to land in that neighbourhood.
	r := StaticReport(4, 16, NEC035())
	if r.AreaGrids < 1200 || r.AreaGrids > 1750 {
		t.Fatalf("static area %.0f grids outside calibration band", r.AreaGrids)
	}
	if r.ArbitrationNs < 2.4 || r.ArbitrationNs > 3.6 {
		t.Fatalf("static arbitration %.2f ns outside calibration band", r.ArbitrationNs)
	}
	if r.MaxBusMHz < 270 || r.MaxBusMHz > 420 {
		t.Fatalf("max bus speed %.0f MHz", r.MaxBusMHz)
	}
	var sum float64
	for _, b := range r.Breakdown {
		sum += b.Grids
	}
	if math.Abs(sum-r.AreaGrids) > 1e-9 {
		t.Fatal("breakdown does not sum to total")
	}
	if !strings.Contains(r.String(), "cell grids") {
		t.Fatalf("String: %s", r)
	}
}

func TestDynamicCostsMoreThanStatic(t *testing.T) {
	st := StaticReport(4, 16, NEC035())
	dy := DynamicReport(4, 16, NEC035())
	if dy.ArbitrationNs <= st.ArbitrationNs {
		t.Fatalf("dynamic arbitration %.2f not slower than static %.2f",
			dy.ArbitrationNs, st.ArbitrationNs)
	}
	if dy.MaxBusMHz >= st.MaxBusMHz {
		t.Fatal("dynamic max frequency not lower")
	}
	// The dynamic design trades the exponential LUT for adders and the
	// modulo unit; at 4 masters both are of comparable order, but the
	// dynamic datapath must carry the modulo unit.
	found := false
	for _, b := range dy.Breakdown {
		if b.Block == "modulo unit" && b.Grids > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("dynamic breakdown missing modulo unit")
	}
}

func TestStaticAreaScalesExponentiallyWithMasters(t *testing.T) {
	// The LUT doubles per master: 8 masters must cost far more than 4.
	a4 := StaticReport(4, 16, NEC035()).AreaGrids
	a8 := StaticReport(8, 16, NEC035()).AreaGrids
	if a8 < 4*a4 {
		t.Fatalf("LUT growth missing: 4 masters %.0f, 8 masters %.0f", a4, a8)
	}
	// The dynamic design dodges the exponential: its 8-master area must
	// stay well below the static 8-master area.
	d8 := DynamicReport(8, 16, NEC035()).AreaGrids
	if d8 > a8/2 {
		t.Fatalf("dynamic 8-master area %.0f not clearly below static %.0f", d8, a8)
	}
}

func TestReportScalingWithWidth(t *testing.T) {
	narrow := StaticReport(4, 8, NEC035())
	wide := StaticReport(4, 24, NEC035())
	if wide.AreaGrids <= narrow.AreaGrids {
		t.Fatal("area must grow with word width")
	}
	if wide.ArbitrationNs <= narrow.ArbitrationNs {
		t.Fatal("arbitration must slow with word width")
	}
}

func BenchmarkStaticManagerDraw(b *testing.B) {
	m, _ := NewStaticManager([]uint64{1, 2, 3, 4}, 16, core.PolicyRedraw,
		LFSRSource{Reg: lfsr.MustGalois(16, 1)})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Draw(0b1111)
	}
}

func BenchmarkDynamicManagerDraw(b *testing.B) {
	m, _ := NewDynamicManager(4, 16, LFSRSource{Reg: lfsr.MustGalois(16, 1)})
	tickets := []uint64{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Draw(0b1111, tickets)
	}
}
