package expt

import (
	"fmt"

	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/core"
	"lotterybus/internal/obs"
	"lotterybus/internal/prng"
	"lotterybus/internal/stats"
	"lotterybus/internal/topology"
	"lotterybus/internal/traffic"
)

// BridgeResult is the §2.3 extension experiment: a hierarchical two-bus
// system with lottery arbitration on both channels. A CPU on bus A
// streams transactions across a store-and-forward bridge into a memory
// on bus B, contending there with two local masters; local traffic on
// bus A contends with the CPU. The lottery's proportional guarantees
// must hold per channel, and cross-bridge traffic must not starve.
type BridgeResult struct {
	// BusABW and BusBBW are per-master bandwidth fractions.
	BusABW []float64
	BusBBW []float64
	// Forwarded is the number of messages delivered end to end.
	Forwarded int64
	// EndToEndLatency is the mean cycles from arrival on bus A to
	// completion on bus B.
	EndToEndLatency float64
	// Dropped counts bridge FIFO overflows.
	Dropped int64
	// Bridge is the full counter snapshot (raw end-to-end sums and FIFO
	// occupancy included), for observability recording and merging.
	Bridge topology.BridgeStats
}

// RecordObs folds the bridge's counters into an observability registry
// as one batched post-run update.
func (r *BridgeResult) RecordObs(reg *obs.Registry, labels obs.Labels) {
	obs.RecordBridge(reg, labels, "A-B", r.Bridge)
}

// Table renders the outcome.
func (r *BridgeResult) Table() *stats.Table {
	t := stats.NewTable("Hierarchical two-bus system with per-channel lotteries",
		"quantity", "value")
	for i, bw := range r.BusABW {
		t.AddRow(fmt.Sprintf("bus A master %d bw%%", i), fmt.Sprintf("%.1f", 100*bw))
	}
	for i, bw := range r.BusBBW {
		t.AddRow(fmt.Sprintf("bus B master %d bw%%", i), fmt.Sprintf("%.1f", 100*bw))
	}
	t.AddRow("messages forwarded", fmt.Sprintf("%d", r.Forwarded))
	t.AddRow("end-to-end latency (cycles)", fmt.Sprintf("%.1f", r.EndToEndLatency))
	t.AddRow("end-to-end messages measured", fmt.Sprintf("%d", r.Bridge.E2EMessages))
	t.AddRow("bridge drops", fmt.Sprintf("%d", r.Dropped))
	t.AddRow("bridge FIFO occupancy at end", fmt.Sprintf("%d", r.Bridge.Queued))
	return t
}

// RunBridge runs the hierarchical experiment.
func RunBridge(o Options) (*BridgeResult, error) {
	o = o.fill()
	sys := topology.NewSystem()

	mkLottery := func(tickets []uint64, tag string) (bus.Arbiter, error) {
		mgr, err := core.NewStaticLottery(core.StaticConfig{
			Tickets: tickets,
			Source:  prng.NewXorShift64Star(prng.Derive(o.Seed, tag)),
		})
		if err != nil {
			return nil, err
		}
		return arb.NewStaticLottery(mgr), nil
	}

	// Bus A: CPU (cross traffic, 2 tickets) vs DMA (local, 1 ticket).
	a := bus.New(bus.Config{MaxBurst: 16})
	cpuGen, err := traffic.NewBernoulli(0.25, traffic.Fixed(8), 1,
		prng.Derive(o.Seed, "bridge/cpu"))
	if err != nil {
		return nil, err
	}
	a.AddMaster("cpu", cpuGen, bus.MasterOpts{Tickets: 2})
	dmaGen, err := traffic.NewBernoulli(0.5, traffic.Fixed(16), 0,
		prng.Derive(o.Seed, "bridge/dma"))
	if err != nil {
		return nil, err
	}
	a.AddMaster("dma", dmaGen, bus.MasterOpts{Tickets: 1})
	a.AddSlave("local-mem", bus.SlaveOpts{})
	bridgeSlave := a.AddSlave("bridge", bus.SlaveOpts{})
	arbA, err := mkLottery([]uint64{2, 1}, "bridge/busA")
	if err != nil {
		return nil, err
	}
	a.SetArbiter(arbA)

	// Bus B: bridge master (3 tickets) vs two local masters (1 each).
	b := bus.New(bus.Config{MaxBurst: 16})
	b.AddMaster("bridge", nil, bus.MasterOpts{Tickets: 3})
	for i := 0; i < 2; i++ {
		gen, err := traffic.NewBernoulli(0.4, traffic.Fixed(16), 0,
			prng.Derive(o.Seed, fmt.Sprintf("bridge/local%d", i)))
		if err != nil {
			return nil, err
		}
		b.AddMaster(fmt.Sprintf("local%d", i), gen, bus.MasterOpts{Tickets: 1})
	}
	b.AddSlave("remote-mem", bus.SlaveOpts{})
	arbB, err := mkLottery([]uint64{3, 1, 1}, "bridge/busB")
	if err != nil {
		return nil, err
	}
	b.SetArbiter(arbB)

	ai := sys.AddBus("A", a)
	bi := sys.AddBus("B", b)
	br, err := sys.Connect(ai, bi, topology.BridgeConfig{
		SrcSlave:  bridgeSlave,
		DstMaster: 0,
		DstSlave:  0,
		Delay:     4,
		FifoCap:   128,
	})
	if err != nil {
		return nil, err
	}
	if err := sys.Run(o.Cycles); err != nil {
		return nil, err
	}
	return &BridgeResult{
		BusABW:          bandwidths(a.Collector()),
		BusBBW:          bandwidths(b.Collector()),
		Forwarded:       br.Forwarded(),
		EndToEndLatency: br.AvgEndToEndLatency(),
		Dropped:         br.Dropped(),
		Bridge:          br.Stats(),
	}, nil
}
