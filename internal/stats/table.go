package stats

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table used by the experiment
// harness to print figure/table rows the way the paper reports them.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// AddRowValues appends a row rendering each cell with a default format:
// floats as %.2f, everything else via fmt.Sprint.
func (t *Table) AddRowValues(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintln(w, t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, 0, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts = append(parts, pad(c, widths[i]))
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is a labelled sequence of (x-label, y-value) points — one curve
// of a paper figure.
type Series struct {
	Name   string
	Labels []string
	Values []float64
}

// Add appends one point.
func (s *Series) Add(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, value)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Values) }

// Figure is a set of series sharing an x-axis — the textual stand-in for
// one paper figure.
type Figure struct {
	Title  string
	XAxis  string
	YAxis  string
	Series []*Series
}

// NewFigure returns an empty figure.
func NewFigure(title, xAxis, yAxis string) *Figure {
	return &Figure{Title: title, XAxis: xAxis, YAxis: yAxis}
}

// AddSeries appends a named series and returns it for population.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.Series = append(f.Series, s)
	return s
}

// Table converts the figure into a printable table: one row per x-label,
// one column per series.
func (f *Figure) Table() *Table {
	headers := append([]string{f.XAxis}, make([]string, 0, len(f.Series))...)
	for _, s := range f.Series {
		headers = append(headers, s.Name)
	}
	t := NewTable(fmt.Sprintf("%s (%s)", f.Title, f.YAxis), headers...)
	if len(f.Series) == 0 {
		return t
	}
	n := f.Series[0].Len()
	for i := 0; i < n; i++ {
		row := []string{f.Series[0].Labels[i]}
		for _, s := range f.Series {
			if i < s.Len() {
				row = append(row, fmt.Sprintf("%.2f", s.Values[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// Render writes the figure's table form to w.
func (f *Figure) Render(w io.Writer) { f.Table().Render(w) }

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}
