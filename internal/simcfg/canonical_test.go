package simcfg

import (
	"bytes"
	"strings"
	"testing"

	"lotterybus"
	"lotterybus/internal/prng"
)

// sampleCanonical pins the exact canonical serialization of
// SampleConfig. The canonical form is a cache-key input and a journal
// provenance format: changing these bytes silently invalidates every
// persistent cache entry and breaks journal comparability, so any
// intentional format change must update this constant consciously.
const sampleCanonical = `{"cycles":200000,"seed":42,"maxBurst":16,"arbiter":{"kind":"lottery"},"slaves":[{"name":"shared-memory"}],"masters":[{"name":"cpu","weight":4,"traffic":{"kind":"bernoulli","msgWords":16,"load":0.4}},{"name":"dsp","weight":3,"traffic":{"kind":"bursty","msgWords":16,"load":0.2,"loadOn":0.9,"meanOn":640}},{"name":"dma","weight":2,"traffic":{"kind":"saturating","msgWords":16}},{"name":"io","weight":1,"traffic":{"kind":"periodic","msgWords":4,"period":100}}],"resilience":{"retryLimit":16}}`

func TestCanonicalStability(t *testing.T) {
	got, err := SampleConfig().Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != sampleCanonical {
		t.Fatalf("canonical form changed:\n got: %s\nwant: %s", got, sampleCanonical)
	}
}

// TestCanonicalRoundTrip proves the canonical form is a fixed point:
// it parses back through the strict config parser and re-canonicalizes
// to the same bytes, and it does not modify the receiver.
func TestCanonicalRoundTrip(t *testing.T) {
	cfg := SampleConfig()
	cfg.Faults = &lotterybus.FaultConfig{
		SlaveError: 0.01,
		Babblers:   []lotterybus.Babbler{{Master: 1, Load: 0.5}},
	}
	before, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Resilience != nil || cfg.Faults.Seed != 0 || cfg.Faults.Babblers[0].Words != 0 {
		t.Fatal("Canonical mutated its receiver")
	}
	reparsed, err := ParseConfig(strings.NewReader(string(before)))
	if err != nil {
		t.Fatalf("canonical form does not re-parse: %v", err)
	}
	after, err := reparsed.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatalf("canonical form is not a fixed point:\n1st: %s\n2nd: %s", before, after)
	}
}

// TestCanonicalEquivalence proves configurations that build identical
// systems canonicalize identically — defaults spelled out or omitted,
// parameters the selected kind ignores — while any parameter Build
// reads changes the bytes.
func TestCanonicalEquivalence(t *testing.T) {
	base := func() *SimConfig {
		return &SimConfig{
			Cycles:  50000,
			Seed:    7,
			Arbiter: ArbiterConfig{Kind: ""},
			Slaves:  []SlaveConfig{{Name: "mem"}},
			Masters: []MasterConfig{
				{Name: "a", Weight: 0, Traffic: TrafficConfig{Kind: "bernoulli", Load: 0.3}},
			},
		}
	}
	want, err := base().Canonical()
	if err != nil {
		t.Fatal(err)
	}

	same := map[string]func(*SimConfig){
		"explicit defaults": func(c *SimConfig) {
			c.MaxBurst = 16
			c.Arbiter.Kind = "lottery"
			c.Masters[0].Weight = 1
			c.Masters[0].Traffic.MsgWords = 16
			c.Resilience = &ResilienceConfig{RetryLimit: 16}
		},
		"ignored slots on non-tdma": func(c *SimConfig) {
			c.Arbiter.SlotsPerWeight = 5
		},
		"ignored bursty params on bernoulli": func(c *SimConfig) {
			c.Masters[0].Traffic.MeanOn = 99
			c.Masters[0].Traffic.Period = 3
		},
	}
	for name, mutate := range same {
		c := base()
		mutate(c)
		got, err := c.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s: canonical bytes differ:\n got: %s\nwant: %s", name, got, want)
		}
	}

	diff := map[string]func(*SimConfig){
		"cycles":   func(c *SimConfig) { c.Cycles = 50001 },
		"seed":     func(c *SimConfig) { c.Seed = 8 },
		"maxBurst": func(c *SimConfig) { c.MaxBurst = 8 },
		"arbiter":  func(c *SimConfig) { c.Arbiter.Kind = "priority" },
		"load":     func(c *SimConfig) { c.Masters[0].Traffic.Load = 0.31 },
		"weight":   func(c *SimConfig) { c.Masters[0].Weight = 2 },
		"retries":  func(c *SimConfig) { c.Resilience = &ResilienceConfig{RetryLimit: 3} },
	}
	for name, mutate := range diff {
		c := base()
		mutate(c)
		got, err := c.Canonical()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if bytes.Equal(got, want) {
			t.Fatalf("%s: canonical form ignores a parameter Build reads", name)
		}
	}
}

// TestCanonicalTDMADefaults proves the TDMA wheels keep (and default)
// SlotsPerWeight while every other kind collapses it.
func TestCanonicalTDMADefaults(t *testing.T) {
	cfg := SampleConfig()
	cfg.Arbiter = ArbiterConfig{Kind: "tdma"}
	implicit, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Arbiter.SlotsPerWeight = 16
	explicit, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(implicit, explicit) {
		t.Fatal("tdma slotsPerWeight default not materialized")
	}
	cfg.Arbiter.SlotsPerWeight = 4
	four, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(four, explicit) {
		t.Fatal("tdma slotsPerWeight not part of the canonical form")
	}
}

// TestCanonicalFaultSeed proves an implicit fault seed canonicalizes
// to the same bytes as the explicitly spelled-out derivation.
func TestCanonicalFaultSeed(t *testing.T) {
	cfg := SampleConfig()
	cfg.Faults = &lotterybus.FaultConfig{SlaveError: 0.02}
	implicit, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults.Seed = prng.Derive(cfg.Seed, "lotterybus/fault")
	explicit, err := cfg.Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(implicit, explicit) {
		t.Fatal("implicit fault seed not materialized to the derived value")
	}
}
