package prng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64KnownVector(t *testing.T) {
	// Reference values for seed 0 from the canonical splitmix64.c.
	s := NewSplitMix64(0)
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
		0xf88bb8a8724c81ec,
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Fatalf("SplitMix64(0) output %d = %#x, want %#x", i, got, w)
		}
	}
}

func TestXorShiftNonZeroState(t *testing.T) {
	x := NewXorShift64Star(0)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		v := x.Uint64()
		if v == 0 {
			// xorshift64* can emit zero only from state zero, which the
			// constructor must prevent.
			t.Fatalf("xorshift64* emitted 0 at step %d", i)
		}
		seen[v] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("xorshift64* repeated a value within 1000 steps: %d unique", len(seen))
	}
}

func TestXorShiftDeterministic(t *testing.T) {
	a := NewXorShift64Star(42)
	b := NewXorShift64Star(42)
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("same seed diverged at step %d: %#x vs %#x", i, av, bv)
		}
	}
	c := NewXorShift64Star(43)
	same := 0
	a = NewXorShift64Star(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincide too often: %d/100", same)
	}
}

func TestUintnRange(t *testing.T) {
	src := NewXorShift64Star(7)
	for _, n := range []uint64{1, 2, 3, 7, 8, 10, 1000, 1 << 32, (1 << 63) + 12345} {
		for i := 0; i < 200; i++ {
			v := Uintn(src, n)
			if v >= n {
				t.Fatalf("Uintn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestUintnUniformity(t *testing.T) {
	// Chi-squared test over 10 buckets; threshold is the 99.9 percentile
	// of chi2 with 9 dof (27.88), with margin.
	src := NewXorShift64Star(11)
	const n = 10
	const draws = 100000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[Uintn(src, n)]++
	}
	exp := float64(draws) / n
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	if chi2 > 30 {
		t.Fatalf("Uintn(10) not uniform: chi2 = %.2f, counts = %v", chi2, counts)
	}
}

func TestUintnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uintn(0) did not panic")
		}
	}()
	Uintn(NewXorShift64Star(1), 0)
}

func TestIntRange(t *testing.T) {
	src := NewXorShift64Star(3)
	for i := 0; i < 1000; i++ {
		v := IntRange(src, -5, 5)
		if v < -5 || v > 5 {
			t.Fatalf("IntRange(-5,5) = %d", v)
		}
	}
	if got := IntRange(src, 9, 9); got != 9 {
		t.Fatalf("IntRange(9,9) = %d", got)
	}
}

func TestFloat64Range(t *testing.T) {
	src := NewXorShift64Star(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		f := Float64(src)
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
		sum += f
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %.4f, want ~0.5", mean)
	}
}

func TestBernoulliEdges(t *testing.T) {
	src := NewXorShift64Star(9)
	for i := 0; i < 100; i++ {
		if Bernoulli(src, 0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !Bernoulli(src, 1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if Bernoulli(src, 0.3) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.3) > 0.01 {
		t.Fatalf("Bernoulli(0.3) frequency %.4f", p)
	}
}

func TestGeometricMean(t *testing.T) {
	src := NewXorShift64Star(13)
	for _, p := range []float64{0.5, 0.1, 0.01} {
		var sum float64
		const n = 200000
		for i := 0; i < n; i++ {
			sum += float64(Geometric(src, p))
		}
		mean := sum / n
		want := (1 - p) / p
		if math.Abs(mean-want) > want*0.05+0.05 {
			t.Fatalf("Geometric(%v) mean %.3f, want ~%.3f", p, mean, want)
		}
	}
	if Geometric(src, 1) != 0 {
		t.Fatal("Geometric(1) must be 0")
	}
}

func TestGeometricPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	Geometric(NewXorShift64Star(1), 0)
}

func TestLogNatAccuracy(t *testing.T) {
	for _, x := range []float64{1e-10, 1e-5, 0.001, 0.1, 0.5, 0.9, 0.999, 1.0} {
		got := logNat(x)
		want := math.Log(x)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("logNat(%v) = %v, want %v", x, got, want)
		}
	}
}

func TestDiscreteProportions(t *testing.T) {
	src := NewXorShift64Star(17)
	weights := []uint64{1, 0, 3, 6}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		counts[Discrete(src, weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight entry selected %d times", counts[1])
	}
	for i, w := range weights {
		want := float64(w) / 10 * n
		if w == 0 {
			continue
		}
		if math.Abs(float64(counts[i])-want) > 0.05*want+50 {
			t.Fatalf("Discrete weight %d: count %d, want ~%.0f", i, counts[i], want)
		}
	}
}

func TestDiscretePanicsOnZeroTotal(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Discrete(all zero) did not panic")
		}
	}()
	Discrete(NewXorShift64Star(1), []uint64{0, 0})
}

func TestShufflePermutes(t *testing.T) {
	src := NewXorShift64Star(19)
	s := []int{0, 1, 2, 3, 4, 5, 6, 7}
	Shuffle(src, s)
	seen := map[int]bool{}
	for _, v := range s {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(1, "traffic/0")
	b := Derive(1, "traffic/1")
	c := Derive(2, "traffic/0")
	if a == b || a == c || b == c {
		t.Fatalf("Derive collisions: %#x %#x %#x", a, b, c)
	}
	if a != Derive(1, "traffic/0") {
		t.Fatal("Derive is not deterministic")
	}
}

func TestMul64MatchesBig(t *testing.T) {
	// Property: mul64 agrees with the Go compiler's 128-bit lowering as
	// verified through decomposition arithmetic.
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via schoolbook on 32-bit halves recomputed independently.
		a0, a1 := a&0xffffffff, a>>32
		b0, b1 := b&0xffffffff, b>>32
		ll := a0 * b0
		lh := a0 * b1
		hl := a1 * b0
		hh := a1 * b1
		mid := lh + hl
		carryMid := uint64(0)
		if mid < lh {
			carryMid = 1 << 32
		}
		wantLo := ll + mid<<32
		carryLo := uint64(0)
		if wantLo < ll {
			carryLo = 1
		}
		wantHi := hh + mid>>32 + carryMid + carryLo
		return hi == wantHi && lo == wantLo
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestUintnLemireExactness(t *testing.T) {
	// Property: for small n, exhaustively-seeded draws stay in range and
	// every residue is reachable.
	f := func(seed uint64, nRaw uint8) bool {
		n := uint64(nRaw%61) + 1
		src := NewXorShift64Star(seed)
		for i := 0; i < 64; i++ {
			if Uintn(src, n) >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkXorShift64Star(b *testing.B) {
	src := NewXorShift64Star(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= src.Uint64()
	}
	_ = sink
}

func BenchmarkUintn(b *testing.B) {
	src := NewXorShift64Star(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= Uintn(src, 1000003)
	}
	_ = sink
}
