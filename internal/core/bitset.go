package core

import "math/bits"

// MaxMasters is the largest number of contenders a lottery manager (and
// the bus fabric built on it) supports. Request sets are passed as
// Bitset request maps; systems of up to 64 masters collapse to the
// single-word Mask64 fast path, so raising this constant does not
// change the ≤64-master hot loop. Every layer that caps its master
// count (bus, lanes, hw, simcfg) derives its limit from this constant.
const MaxMasters = 256

// BitsetWords is the number of 64-bit words backing a Bitset.
const BitsetWords = (MaxMasters + 63) / 64

// The hand-unrolled Any/None/Count bodies assume exactly four words;
// this pair of zero-size arrays fails to compile if MaxMasters moves
// without them being revisited.
var (
	_ [BitsetWords - 4]struct{}
	_ [4 - BitsetWords]struct{}
)

// Bitset is a fixed-size request map over up to MaxMasters contenders:
// bit i set means master i has a pending request. It is a plain value
// type (no heap allocation, comparable with ==); word 0 holds masters
// 0..63, so ≤64-master systems round-trip through Mask64 losslessly.
type Bitset [BitsetWords]uint64

// Mask64Bitset returns the Bitset whose first word is mask — the view
// of a classic uint64 request map inside the wide fabric.
func Mask64Bitset(mask uint64) Bitset {
	var s Bitset
	s[0] = mask
	return s
}

// Set marks bit i. It panics when i is outside [0, MaxMasters).
func (s *Bitset) Set(i int) { s[i>>6] |= uint64(1) << uint(i&63) }

// Clear unmarks bit i. It panics when i is outside [0, MaxMasters).
func (s *Bitset) Clear(i int) { s[i>>6] &^= uint64(1) << uint(i&63) }

// Test reports whether bit i is set. It panics when i is outside
// [0, MaxMasters).
func (s Bitset) Test(i int) bool { return s[i>>6]>>uint(i&63)&1 == 1 }

// Any reports whether any bit is set.
func (s Bitset) Any() bool { return s[0]|s[1]|s[2]|s[3] != 0 }

// None reports whether no bit is set.
func (s Bitset) None() bool { return s[0]|s[1]|s[2]|s[3] == 0 }

// Mask64 returns word 0 — the request map of masters 0..63. For a
// system of at most 64 masters this is the whole set, and the lottery
// managers' DrawSet fast path reduces to the classic uint64 Draw.
func (s Bitset) Mask64() uint64 { return s[0] }

// Count returns the number of set bits.
func (s Bitset) Count() int {
	return bits.OnesCount64(s[0]) + bits.OnesCount64(s[1]) +
		bits.OnesCount64(s[2]) + bits.OnesCount64(s[3])
}

// LowestSet returns the index of the least significant set bit, or
// NoWinner when the set is empty.
func (s Bitset) LowestSet() int {
	for w, word := range s {
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word)
		}
	}
	return NoWinner
}

// HighestSet returns the index of the most significant set bit, or
// NoWinner when the set is empty.
func (s Bitset) HighestSet() int {
	for w := len(s) - 1; w >= 0; w-- {
		if s[w] != 0 {
			return w<<6 + 63 - bits.LeadingZeros64(s[w])
		}
	}
	return NoWinner
}

// Trim clears every bit at index n and above, restricting the set to
// the first n contenders. n outside [0, MaxMasters] is clamped.
func (s *Bitset) Trim(n int) {
	if n < 0 {
		n = 0
	}
	if n >= MaxMasters {
		return
	}
	w := n >> 6
	s[w] &= FullMask(n & 63)
	for w++; w < BitsetWords; w++ {
		s[w] = 0
	}
}

// FullMask returns the uint64 request map with the low n bits set,
// saturating: n >= 64 yields all ones and n <= 0 yields zero. This is
// the safe spelling of the 1<<n-1 idiom, whose shift silently wraps at
// the word width — the exact boundary a 64-master system sits on.
func FullMask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	if n <= 0 {
		return 0
	}
	return uint64(1)<<uint(n) - 1
}

// FullBitset returns the Bitset with the low n bits set, saturating at
// MaxMasters — the "every master pending" request map of a saturated
// n-master fabric, at any width.
func FullBitset(n int) Bitset {
	var s Bitset
	if n <= 0 {
		return s
	}
	if n > MaxMasters {
		n = MaxMasters
	}
	for w := 0; w < n>>6; w++ {
		s[w] = ^uint64(0)
	}
	if low := n & 63; low != 0 {
		s[n>>6] = FullMask(low)
	}
	return s
}
