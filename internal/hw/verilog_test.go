package hw

import (
	"fmt"
	"strings"
	"testing"

	"lotterybus/internal/core"
	"lotterybus/internal/lfsr"
	"lotterybus/internal/prng"
)

func emit(t *testing.T, tickets []uint64, width uint, policy core.SlackPolicy) string {
	t.Helper()
	var b strings.Builder
	if err := EmitStaticVerilog(&b, tickets, width, policy, "lottery_static"); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func TestEmitVerilogStructure(t *testing.T) {
	v := emit(t, []uint64{1, 2, 3, 4}, 6, core.PolicyRedraw)
	for _, want := range []string{
		"module lottery_static (",
		"input  wire [3:0]       req",
		"output reg  [3:0]       gnt",
		"reg [5:0] lfsr_q;",
		"assign fire[0] = lfsr_q < psum0;",
		"assign fire[3] = lfsr_q < psum3;",
		"endmodule",
	} {
		if !strings.Contains(v, want) {
			t.Fatalf("missing %q in:\n%s", want, v)
		}
	}
	// One case arm per request map plus a default.
	if got := strings.Count(v, "4'b"); got < 16 {
		t.Fatalf("only %d case arms", got)
	}
}

func TestEmitVerilogTapsMatchLFSRTable(t *testing.T) {
	v := emit(t, []uint64{1, 1}, 8, core.PolicyRedraw)
	taps, err := lfsr.Taps(8)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("LFSR_TAPS = 8'h%X;", taps)
	if !strings.Contains(v, want) {
		t.Fatalf("taps literal %q missing in:\n%s", want, v)
	}
}

func TestEmitVerilogRangesMatchBehaviouralModel(t *testing.T) {
	// The emitted case arm for each request map must carry the same
	// partial sums the behavioural manager computes.
	tickets := []uint64{3, 1, 5, 2}
	const width = 6
	v := emit(t, tickets, width, core.PolicyRedraw)
	ref, err := core.NewStaticLottery(core.StaticConfig{
		Tickets: tickets,
		Source:  prng.NewXorShift64Star(1),
		Policy:  core.PolicyRedraw,
		Width:   width,
	})
	if err != nil {
		t.Fatal(err)
	}
	for mask := uint64(0); mask < 16; mask++ {
		ps := ref.RangeTable(mask)
		arm := fmt.Sprintf("4'b%04b: begin", mask)
		for i, p := range ps {
			arm += fmt.Sprintf(" psum%d = %d'd%d;", i, width, p)
		}
		arm += " end"
		if !strings.Contains(v, arm) {
			t.Fatalf("case arm %q missing in:\n%s", arm, v)
		}
	}
}

func TestEmitVerilogPolicies(t *testing.T) {
	redraw := emit(t, []uint64{1, 2}, 4, core.PolicyRedraw)
	if !strings.Contains(redraw, "Redraw policy") {
		t.Fatal("redraw comment missing")
	}
	if strings.Contains(redraw, "Slack zone") {
		t.Fatal("redraw emitted absorb-last fallback")
	}
	absorb := emit(t, []uint64{1, 2}, 4, core.PolicyAbsorbLast)
	if !strings.Contains(absorb, "Slack zone") {
		t.Fatal("absorb-last fallback missing")
	}
	if !strings.Contains(absorb, "if (req[1]) gnt = 2'b10;") {
		t.Fatalf("fallback priority chain wrong:\n%s", absorb)
	}
}

func TestEmitVerilogValidation(t *testing.T) {
	var b strings.Builder
	if err := EmitStaticVerilog(&b, nil, 6, core.PolicyRedraw, ""); err == nil {
		t.Fatal("empty tickets accepted")
	}
	if err := EmitStaticVerilog(&b, make([]uint64, 9), 6, core.PolicyRedraw, ""); err == nil {
		t.Fatal("9 masters accepted")
	}
	if err := EmitStaticVerilog(&b, []uint64{1, 2}, 6, core.PolicyExact, ""); err == nil {
		t.Fatal("exact policy accepted")
	}
	if err := EmitStaticVerilog(&b, []uint64{1, 2}, 99, core.PolicyRedraw, ""); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestEmitVerilogDefaultModuleName(t *testing.T) {
	var b strings.Builder
	if err := EmitStaticVerilog(&b, []uint64{1, 2}, 4, core.PolicyRedraw, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "module lottery_static (") {
		t.Fatal("default module name missing")
	}
}

func TestOneHot(t *testing.T) {
	if oneHot(4, 0) != "0001" || oneHot(4, 3) != "1000" {
		t.Fatalf("oneHot wrong: %s %s", oneHot(4, 0), oneHot(4, 3))
	}
}
