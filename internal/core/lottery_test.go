package core

import (
	"math"
	"testing"
	"testing/quick"

	"lotterybus/internal/lfsr"
	"lotterybus/internal/prng"
)

func newStatic(t *testing.T, tickets []uint64, policy SlackPolicy, seed uint64) *StaticLottery {
	t.Helper()
	l, err := NewStaticLottery(StaticConfig{
		Tickets: tickets,
		Source:  prng.NewXorShift64Star(seed),
		Policy:  policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestStaticConfigValidation(t *testing.T) {
	src := prng.NewXorShift64Star(1)
	cases := []struct {
		name string
		cfg  StaticConfig
	}{
		{"no masters", StaticConfig{Source: src}},
		{"nil source", StaticConfig{Tickets: []uint64{1, 2}}},
		{"zero ticket", StaticConfig{Tickets: []uint64{1, 0}, Source: src}},
		{"too wide", StaticConfig{Tickets: []uint64{1, 2}, Source: src, Width: 40}},
		{"too many masters", StaticConfig{Tickets: make65(), Source: src}},
	}
	for _, c := range cases {
		if c.name == "too many masters" {
			for i := range c.cfg.Tickets {
				c.cfg.Tickets[i] = 1
			}
		}
		if _, err := NewStaticLottery(c.cfg); err == nil {
			t.Errorf("%s: config accepted", c.name)
		}
	}
}

func make65() []uint64 { return make([]uint64, MaxMasters+1) }

func TestDrawEmptyMask(t *testing.T) {
	l := newStatic(t, []uint64{1, 2, 3, 4}, PolicyExact, 1)
	if w := l.Draw(0); w != NoWinner {
		t.Fatalf("Draw(0) = %d, want NoWinner", w)
	}
}

func TestDrawSingleRequester(t *testing.T) {
	l := newStatic(t, []uint64{1, 2, 3, 4}, PolicyExact, 1)
	for i := 0; i < 4; i++ {
		for k := 0; k < 50; k++ {
			if w := l.Draw(1 << uint(i)); w != i {
				t.Fatalf("sole requester %d: winner %d", i, w)
			}
		}
	}
}

func TestDrawNeverGrantsNonRequester(t *testing.T) {
	l := newStatic(t, []uint64{1, 2, 3, 4}, PolicyExact, 2)
	for mask := uint64(1); mask < 16; mask++ {
		for k := 0; k < 200; k++ {
			w := l.Draw(mask)
			if w == NoWinner {
				t.Fatalf("mask %04b: no winner under PolicyExact", mask)
			}
			if mask>>uint(w)&1 == 0 {
				t.Fatalf("mask %04b: granted non-requester %d", mask, w)
			}
		}
	}
}

// proportionsFor draws many lotteries with the given mask and returns the
// empirical grant frequency per master.
func proportionsFor(l *StaticLottery, mask uint64, draws int) []float64 {
	counts := make([]int, l.N())
	granted := 0
	for i := 0; i < draws; i++ {
		if w := l.Draw(mask); w != NoWinner {
			counts[w]++
			granted++
		}
	}
	out := make([]float64, l.N())
	for i, c := range counts {
		out[i] = float64(c) / float64(granted)
	}
	return out
}

func TestStaticProportionalityAllMasks(t *testing.T) {
	// Core paper claim: P(C_i) = r_i t_i / sum r_j t_j for every
	// requesting subset, under every slack policy. The hardware-style
	// policies operate on power-of-two-scaled holdings; a 12-bit width
	// keeps their scaling distortion below the statistical tolerance.
	tickets := []uint64{1, 2, 3, 4}
	for _, policy := range []SlackPolicy{PolicyExact, PolicyModulo, PolicyRedraw} {
		l, err := NewStaticLottery(StaticConfig{
			Tickets: tickets,
			Source:  prng.NewXorShift64Star(42),
			Policy:  policy,
			Width:   12,
		})
		if err != nil {
			t.Fatal(err)
		}
		for mask := uint64(1); mask < 16; mask++ {
			got := proportionsFor(l, mask, 60000)
			var total uint64
			for i, tk := range tickets {
				if mask>>uint(i)&1 == 1 {
					total += tk
				}
			}
			for i, tk := range tickets {
				want := 0.0
				if mask>>uint(i)&1 == 1 {
					want = float64(tk) / float64(total)
				}
				if math.Abs(got[i]-want) > 0.015 {
					t.Fatalf("policy %v mask %04b master %d: share %.4f, want %.4f",
						policy, mask, i, got[i], want)
				}
			}
		}
	}
}

func TestPaperExampleFigure8(t *testing.T) {
	// Paper Fig. 8: tickets 1,1,3,4 for C1..C4 (shown as 1,2,3,4 scaled
	// example with masters C1,C3,C4 pending and total 8): with tickets
	// {1,2,3,4} scaled to sum 16 and requesters {C1,C3,C4}, a winning
	// ticket in the top range must grant C4. We verify the range-table
	// structure directly.
	l, err := NewStaticLottery(StaticConfig{
		Tickets: []uint64{1, 2, 3, 4},
		Source:  prng.NewXorShift64Star(1),
		Width:   4, // total 16: scaled holdings must stay 1:2:3:4 -> 1,2,5,8 or similar
	})
	if err != nil {
		t.Fatal(err)
	}
	scaled := l.ScaledTickets()
	var sum uint64
	for _, s := range scaled {
		sum += s
	}
	if sum != 16 {
		t.Fatalf("scaled sum %d, want 16", sum)
	}
	// Requesters C1, C3, C4 (mask 0b1101).
	ps := l.RangeTable(0b1101)
	if ps[0] != scaled[0] {
		t.Fatalf("psum[0] = %d, want %d", ps[0], scaled[0])
	}
	if ps[1] != scaled[0] {
		t.Fatalf("psum[1] = %d (non-requester must not extend range)", ps[1])
	}
	if ps[2] != scaled[0]+scaled[2] {
		t.Fatalf("psum[2] = %d", ps[2])
	}
	if ps[3] != scaled[0]+scaled[2]+scaled[3] {
		t.Fatalf("psum[3] = %d", ps[3])
	}
}

func TestSelectWinnerComparatorSemantics(t *testing.T) {
	// Paper §4.3: "for request map 1101 ... if the generated random
	// number is 5 only C4's comparator outputs 1; if it is 0 all
	// comparators output 1 but the winner is C1."
	psums := []uint64{1, 1, 4, 8} // tickets 1,_,3,4 requesters C1,C3,C4
	if w := selectWinner(psums, 5); w != 3 {
		t.Fatalf("r=5: winner %d, want C4 (index 3)", w)
	}
	if w := selectWinner(psums, 0); w != 0 {
		t.Fatalf("r=0: winner %d, want C1 (index 0)", w)
	}
	if w := selectWinner(psums, 1); w != 2 {
		t.Fatalf("r=1: winner %d, want C3 (index 2)", w)
	}
	if w := selectWinner(psums, 7); w != 3 {
		t.Fatalf("r=7: winner %d, want C4", w)
	}
	if w := selectWinner(psums, 8); w != NoWinner {
		t.Fatalf("r=8: winner %d, want NoWinner", w)
	}
}

func TestPolicyRedrawSlack(t *testing.T) {
	// With a lone requester holding a small share of the scaled total,
	// PolicyRedraw must sometimes return NoWinner and count redraws, and
	// never grant anyone else.
	l := newStatic(t, []uint64{1, 15}, PolicyRedraw, 7)
	grants, misses := 0, 0
	for i := 0; i < 20000; i++ {
		switch w := l.Draw(0b01); w {
		case 0:
			grants++
		case NoWinner:
			misses++
		default:
			t.Fatalf("granted non-requester %d", w)
		}
	}
	if misses == 0 {
		t.Fatal("PolicyRedraw never missed despite large slack")
	}
	if grants == 0 {
		t.Fatal("PolicyRedraw never granted")
	}
	if l.Redraws() != uint64(misses) {
		t.Fatalf("Redraws() = %d, want %d", l.Redraws(), misses)
	}
}

func TestPolicyAbsorbLastBias(t *testing.T) {
	// The slack zone goes to the highest-indexed requester; with mask
	// {C1, C2} the slack inflates C2's share, never C1's, and no draw is
	// ever lost.
	l := newStatic(t, []uint64{1, 1, 14}, PolicyAbsorbLast, 9)
	// scaled total is 16; requesters C1, C2 hold ~1/16 + ~1/16, so the
	// slack zone is large.
	counts := [2]int{}
	const draws = 40000
	for i := 0; i < draws; i++ {
		w := l.Draw(0b011)
		if w != 0 && w != 1 {
			t.Fatalf("winner %d outside mask", w)
		}
		counts[w]++
	}
	if counts[0]+counts[1] != draws {
		t.Fatal("AbsorbLast lost draws")
	}
	if counts[1] <= counts[0]*2 {
		t.Fatalf("expected heavy bias toward last requester, got %v", counts)
	}
}

func TestStaticLUTMatchesOnDemand(t *testing.T) {
	// A manager over the LUT threshold must behave identically to the
	// LUT-backed path. Compare range tables of a 4-master manager against
	// a hand-computed on-demand path.
	l := newStatic(t, []uint64{3, 5, 7, 9}, PolicyExact, 3)
	scaled := l.ScaledTickets()
	for mask := uint64(0); mask < 16; mask++ {
		ps := l.RangeTable(mask)
		var acc uint64
		for i := 0; i < 4; i++ {
			if mask>>uint(i)&1 == 1 {
				acc += scaled[i]
			}
			if ps[i] != acc {
				t.Fatalf("mask %04b psum[%d] = %d, want %d", mask, i, ps[i], acc)
			}
		}
	}
}

func TestStaticManyMastersNoLUT(t *testing.T) {
	// 16 masters exceeds lutMaxMasters: exercises the on-demand range
	// path end to end.
	tickets := make([]uint64, 16)
	for i := range tickets {
		tickets[i] = uint64(i + 1)
	}
	l, err := NewStaticLottery(StaticConfig{
		Tickets: tickets,
		Source:  prng.NewXorShift64Star(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if l.scaledLUT.psums != nil || l.origLUT.psums != nil {
		t.Fatal("LUT built beyond lutMaxMasters")
	}
	mask := uint64(1)<<16 - 1
	counts := make([]int, 16)
	const draws = 160000
	for i := 0; i < draws; i++ {
		w := l.Draw(mask)
		if w < 0 || w > 15 {
			t.Fatalf("winner %d", w)
		}
		counts[w]++
	}
	total := 16 * 17 / 2
	for i, c := range counts {
		want := float64(i+1) / float64(total)
		got := float64(c) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("master %d share %.4f, want %.4f", i, got, want)
		}
	}
}

func TestStaticWithLFSRSource(t *testing.T) {
	// Hardware configuration: LFSR random source, redraw policy.
	l, err := NewStaticLottery(StaticConfig{
		Tickets: []uint64{1, 2, 3, 4},
		Source:  lfsr.MustGalois(16, 0xACE1),
		Policy:  PolicyRedraw,
		Width:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// At width 4 the hardware path draws over the scaled holdings, so
	// the empirical shares must match scaled/16 (1:2:3:4 distorts to
	// e.g. 2:3:5:6 when forced to sum to a power of two).
	scaled := l.ScaledTickets()
	got := proportionsFor(l, 0b1111, 50000)
	for i, s := range scaled {
		want := float64(s) / 16
		if math.Abs(got[i]-want) > 0.02 {
			t.Fatalf("LFSR-driven share %d = %.4f, want %.4f (scaled %v)", i, got[i], want, scaled)
		}
	}
}

func TestDynamicConfigValidation(t *testing.T) {
	src := prng.NewXorShift64Star(1)
	if _, err := NewDynamicLottery(DynamicConfig{Masters: 0, Source: src}); err == nil {
		t.Error("zero masters accepted")
	}
	if _, err := NewDynamicLottery(DynamicConfig{Masters: 4}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewDynamicLottery(DynamicConfig{Masters: 4, Source: src, Width: 48}); err == nil {
		t.Error("excess width accepted")
	}
	if _, err := NewDynamicLottery(DynamicConfig{Masters: MaxMasters + 1, Source: src}); err == nil {
		t.Error("too many masters accepted")
	}
}

func TestDynamicProportionality(t *testing.T) {
	l, err := NewDynamicLottery(DynamicConfig{
		Masters: 4,
		Source:  prng.NewXorShift64Star(21),
	})
	if err != nil {
		t.Fatal(err)
	}
	tickets := []uint64{5, 10, 25, 60}
	counts := make([]int, 4)
	const draws = 100000
	for i := 0; i < draws; i++ {
		w := l.Draw(0b1111, tickets)
		counts[w]++
	}
	for i, tk := range tickets {
		want := float64(tk) / 100
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Fatalf("dynamic share %d = %.4f, want %.4f", i, got, want)
		}
	}
}

func TestDynamicTicketsChangePerDraw(t *testing.T) {
	// The same manager must honour whatever holdings each draw presents.
	l, _ := NewDynamicLottery(DynamicConfig{Masters: 2, Source: prng.NewXorShift64Star(8)})
	heavy0 := []uint64{99, 1}
	heavy1 := []uint64{1, 99}
	w0, w1 := 0, 0
	for i := 0; i < 5000; i++ {
		if l.Draw(0b11, heavy0) == 0 {
			w0++
		}
		if l.Draw(0b11, heavy1) == 1 {
			w1++
		}
	}
	if w0 < 4800 || w1 < 4800 {
		t.Fatalf("dynamic reconfiguration not honoured: %d/%d", w0, w1)
	}
}

func TestDynamicZeroTicketRequesters(t *testing.T) {
	l, _ := NewDynamicLottery(DynamicConfig{Masters: 3, Source: prng.NewXorShift64Star(4)})
	// A zero-ticket requester never wins while another requester holds
	// tickets.
	for i := 0; i < 2000; i++ {
		if w := l.Draw(0b011, []uint64{0, 7, 3}); w != 1 {
			t.Fatalf("zero-ticket master won (w=%d)", w)
		}
	}
	// All-zero holdings degrade to granting the lowest requester rather
	// than deadlocking.
	if w := l.Draw(0b110, []uint64{0, 0, 0}); w != 1 {
		t.Fatalf("all-zero holdings: winner %d, want 1", w)
	}
}

func TestDynamicOverflowWidthFallsBack(t *testing.T) {
	// Live totals beyond the RNG width must still produce exact
	// proportional grants (software guard over the hardware model).
	l, _ := NewDynamicLottery(DynamicConfig{
		Masters: 2,
		Source:  prng.NewXorShift64Star(6),
		Width:   4, // 16 < total below
	})
	counts := [2]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		counts[l.Draw(0b11, []uint64{300, 100})]++
	}
	got := float64(counts[0]) / draws
	if math.Abs(got-0.75) > 0.01 {
		t.Fatalf("overflow fallback share %.4f, want 0.75", got)
	}
}

func TestDynamicDrawPanicsOnTicketLenMismatch(t *testing.T) {
	l, _ := NewDynamicLottery(DynamicConfig{Masters: 3, Source: prng.NewXorShift64Star(1)})
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ticket slice did not panic")
		}
	}()
	l.Draw(0b1, []uint64{1})
}

func TestAccessProbability(t *testing.T) {
	// Known values: t/T = 1/4, n = 1 -> 0.25; n -> inf -> 1.
	if p := AccessProbability(1, 4, 1); math.Abs(p-0.25) > 1e-12 {
		t.Fatalf("P(1/4, 1) = %v", p)
	}
	if p := AccessProbability(1, 4, 16); math.Abs(p-(1-math.Pow(0.75, 16))) > 1e-12 {
		t.Fatalf("P(1/4, 16) = %v", p)
	}
	if p := AccessProbability(4, 4, 1); p != 1 {
		t.Fatalf("P(1, 1) = %v", p)
	}
	if p := AccessProbability(1, 0, 5); p != 0 {
		t.Fatalf("P with zero total = %v", p)
	}
	if p := AccessProbability(1, 4, 0); p != 0 {
		t.Fatalf("P with zero draws = %v", p)
	}
}

func TestAccessProbabilityMonotone(t *testing.T) {
	f := func(tRaw, totRaw uint16, nRaw uint8) bool {
		total := uint64(totRaw)%1000 + 2
		tk := uint64(tRaw)%total + 1
		n := int(nRaw)%50 + 1
		p1 := AccessProbability(tk, total, n)
		p2 := AccessProbability(tk, total, n+1)
		return p2 >= p1 && p1 >= 0 && p2 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawsForConfidence(t *testing.T) {
	n := DrawsForConfidence(1, 10, 0.99)
	if n <= 0 {
		t.Fatalf("DrawsForConfidence = %d", n)
	}
	// The returned n must achieve the confidence and n-1 must not.
	if p := AccessProbability(1, 10, n); p < 0.99 {
		t.Fatalf("n=%d gives p=%v < 0.99", n, p)
	}
	if p := AccessProbability(1, 10, n-1); p >= 0.99 {
		t.Fatalf("n-1=%d already gives p=%v", n-1, p)
	}
	if DrawsForConfidence(0, 10, 0.5) != -1 {
		t.Fatal("zero tickets must be unreachable")
	}
	if DrawsForConfidence(10, 10, 0.5) != 1 {
		t.Fatal("full holdings must win on the first draw")
	}
}

func TestStarvationFreedomEmpirical(t *testing.T) {
	// Monte-Carlo check of the starvation bound: a 1-of-10 ticket holder
	// must win within DrawsForConfidence(0.999) draws in ~99.9% of
	// trials.
	l := newStatic(t, []uint64{1, 9}, PolicyExact, 77)
	n := DrawsForConfidence(1, 10, 0.999)
	const trials = 3000
	failures := 0
	for trial := 0; trial < trials; trial++ {
		won := false
		for d := 0; d < n; d++ {
			if l.Draw(0b11) == 0 {
				won = true
				break
			}
		}
		if !won {
			failures++
		}
	}
	if failures > trials/100 { // generous: expect ~0.1%
		t.Fatalf("starvation bound violated: %d/%d trials failed", failures, trials)
	}
}

func TestHighestLowestBit(t *testing.T) {
	if highestBit(0) != NoWinner {
		t.Fatal("highestBit(0)")
	}
	if highestBit(0b1010) != 3 {
		t.Fatal("highestBit(0b1010)")
	}
	if lowestBit(0b1010) != 1 {
		t.Fatal("lowestBit(0b1010)")
	}
	if lowestBit(0) != NoWinner {
		t.Fatal("lowestBit(0)")
	}
}

func TestDrawCounters(t *testing.T) {
	l := newStatic(t, []uint64{1, 1}, PolicyExact, 1)
	for i := 0; i < 10; i++ {
		l.Draw(0b11)
	}
	l.Draw(0) // no draw on empty mask
	if l.Draws() != 10 {
		t.Fatalf("Draws() = %d, want 10", l.Draws())
	}
}

func TestMaskBeyondNIgnored(t *testing.T) {
	l := newStatic(t, []uint64{1, 2}, PolicyExact, 3)
	for i := 0; i < 100; i++ {
		w := l.Draw(0xFF) // bits beyond master 1 must be masked off
		if w != 0 && w != 1 {
			t.Fatalf("winner %d beyond configured masters", w)
		}
	}
}

func TestStaticDeterminism(t *testing.T) {
	a := newStatic(t, []uint64{2, 3, 5}, PolicyModulo, 1234)
	b := newStatic(t, []uint64{2, 3, 5}, PolicyModulo, 1234)
	for i := 0; i < 1000; i++ {
		mask := uint64(i%7) + 1
		if wa, wb := a.Draw(mask), b.Draw(mask); wa != wb {
			t.Fatalf("same-seed managers diverged at draw %d: %d vs %d", i, wa, wb)
		}
	}
}

func BenchmarkStaticDraw4(b *testing.B) {
	l, _ := NewStaticLottery(StaticConfig{
		Tickets: []uint64{1, 2, 3, 4},
		Source:  prng.NewXorShift64Star(1),
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Draw(0b1111)
	}
}

func BenchmarkDynamicDraw4(b *testing.B) {
	l, _ := NewDynamicLottery(DynamicConfig{Masters: 4, Source: prng.NewXorShift64Star(1)})
	tickets := []uint64{1, 2, 3, 4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Draw(0b1111, tickets)
	}
}

func BenchmarkStaticDraw16(b *testing.B) {
	tickets := make([]uint64, 16)
	for i := range tickets {
		tickets[i] = uint64(i + 1)
	}
	l, _ := NewStaticLottery(StaticConfig{Tickets: tickets, Source: prng.NewXorShift64Star(1)})
	mask := uint64(1)<<16 - 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Draw(mask)
	}
}
