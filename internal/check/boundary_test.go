package check_test

import (
	"fmt"
	"testing"

	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/check"
	"lotterybus/internal/core"
	"lotterybus/internal/lanes"
	"lotterybus/internal/prng"
	"lotterybus/internal/topology"
	"lotterybus/internal/traffic"
)

// The 64-master boundary is where the request mask crosses from the
// single-word fast path into the wide bitset: 63 and 64 masters must
// stay on the Mask64 path, 65 and beyond take the [K]uint64 path. This
// grid proves all three engines — the scalar per-cycle loop, the
// fast-forward engine and the lane-batched engine — remain bit-identical
// on both sides of that boundary, so the fast path is an optimization
// and not a behavioural fork.

const (
	boundaryCycles = 8000
	boundarySeed   = 99
)

// wideArbMaker builds an n-master arbiter for the boundary grid.
type wideArbMaker struct {
	name string
	make func(n int) (bus.Arbiter, error)
}

func wideArbiters() []wideArbMaker {
	return []wideArbMaker{
		{"static-lottery", func(n int) (bus.Arbiter, error) {
			tickets := make([]uint64, n)
			for i := range tickets {
				tickets[i] = uint64(i%4) + 1
			}
			mgr, err := core.NewStaticLottery(core.StaticConfig{
				Tickets: tickets,
				Source:  prng.NewXorShift64Star(7),
			})
			if err != nil {
				return nil, err
			}
			return arb.NewStaticLottery(mgr), nil
		}},
		{"dynamic-lottery", func(n int) (bus.Arbiter, error) {
			mgr, err := core.NewDynamicLottery(core.DynamicConfig{
				Masters: n,
				Source:  prng.NewXorShift64Star(7),
			})
			if err != nil {
				return nil, err
			}
			return arb.NewDynamicLottery(mgr), nil
		}},
		{"roundrobin", func(n int) (bus.Arbiter, error) {
			return arb.NewRoundRobin(n)
		}},
	}
}

// boundaryGen builds master i's generator for an n-master boundary
// cell: light Bernoulli load so the fast-forward engine has dead gaps
// to skip.
func boundaryGen(n, i int) (bus.Generator, error) {
	return traffic.NewBernoulli(0.008, traffic.Fixed(8), i%2,
		prng.Derive(boundarySeed, fmt.Sprintf("wide%d/m%d", n, i)))
}

// buildWideScalar builds the n-master scalar (or fast-forward) bus.
func buildWideScalar(n int, am wideArbMaker, disableFastForward bool) (*bus.Bus, error) {
	b := bus.New(bus.Config{MaxBurst: 16})
	b.DisableFastForward = disableFastForward
	for i := 0; i < n; i++ {
		gen, err := boundaryGen(n, i)
		if err != nil {
			return nil, err
		}
		b.AddMaster(fmt.Sprintf("m%d", i), gen, bus.MasterOpts{Tickets: uint64(i%4) + 1})
	}
	b.AddSlave("mem", bus.SlaveOpts{})
	b.AddSlave("io", bus.SlaveOpts{})
	a, err := am.make(n)
	if err != nil {
		return nil, err
	}
	b.SetArbiter(a)
	return b, nil
}

// buildWideLanes builds the single-lane lane-engine twin.
func buildWideLanes(n int, am wideArbMaker) *lanes.Engine {
	e := lanes.New(bus.Config{MaxBurst: 16}, 1)
	for i := 0; i < n; i++ {
		i := i
		e.AddMaster(fmt.Sprintf("m%d", i), bus.MasterOpts{Tickets: uint64(i%4) + 1},
			func(lane int) (bus.Generator, error) { return boundaryGen(n, i) })
	}
	e.AddSlave("mem", bus.SlaveOpts{})
	e.AddSlave("io", bus.SlaveOpts{})
	e.SetArbiter(func(lane int) (bus.Arbiter, error) { return am.make(n) })
	return e
}

// TestWideBoundaryGrid runs 63-, 64-, 65- and 96-master systems through
// all three engines and requires identical collector fingerprints and a
// clean invariant audit on each side of the mask-word boundary.
func TestWideBoundaryGrid(t *testing.T) {
	for _, n := range []int{63, 64, 65, 96} {
		for _, am := range wideArbiters() {
			n, am := n, am
			t.Run(fmt.Sprintf("n%d/%s", n, am.name), func(t *testing.T) {
				t.Parallel()
				scalar, err := buildWideScalar(n, am, true)
				if err != nil {
					t.Fatal(err)
				}
				if err := scalar.Run(boundaryCycles); err != nil {
					t.Fatal(err)
				}
				ff, err := buildWideScalar(n, am, false)
				if err != nil {
					t.Fatal(err)
				}
				if err := ff.Run(boundaryCycles); err != nil {
					t.Fatal(err)
				}
				eng := buildWideLanes(n, am)
				if err := eng.Run(boundaryCycles); err != nil {
					t.Fatal(err)
				}
				want := scalar.Collector().Fingerprint()
				if got := ff.Collector().Fingerprint(); got != want {
					t.Errorf("fast-forward fingerprint %#x, scalar %#x", got, want)
				}
				if got := eng.Collector(0).Fingerprint(); got != want {
					t.Errorf("lanes fingerprint %#x, scalar %#x", got, want)
				}
				if v := check.Audit(scalar); len(v) != 0 {
					t.Errorf("scalar audit: %v", v)
				}
				if v := check.Audit(ff); len(v) != 0 {
					t.Errorf("fast-forward audit: %v", v)
				}
				var moved int64
				for m := 0; m < scalar.Collector().N(); m++ {
					moved += scalar.Collector().Words(m)
				}
				if moved == 0 {
					t.Error("boundary cell moved no words; grid is vacuous")
				}
			})
		}
	}
}

// TestMultiSegmentConservationAudit builds a bridged two-segment fabric
// wide enough to cross the mask boundary (48 masters per segment, 96
// fabric-wide), runs it, and requires the system audit to pass: every
// word entering the bridge from segment A is injected into segment B,
// still waiting in the bridge FIFO, or counted as shed — never invented
// or lost between the segments' independent ledgers.
func TestMultiSegmentConservationAudit(t *testing.T) {
	const perSeg = 48
	mkSeg := func(tag string, hasBridgeMaster bool) *bus.Bus {
		b := bus.New(bus.Config{MaxBurst: 16})
		tickets := []uint64{}
		if hasBridgeMaster {
			b.AddMaster("bridge-in", nil, bus.MasterOpts{Tickets: 4})
			tickets = append(tickets, 4)
		}
		for i := 0; i < perSeg; i++ {
			gen, err := traffic.NewBernoulli(0.02, traffic.Fixed(8), i%2,
				prng.Derive(boundarySeed, tag+fmt.Sprintf("/m%d", i)))
			if err != nil {
				t.Fatal(err)
			}
			b.AddMaster(fmt.Sprintf("%s-m%d", tag, i), gen, bus.MasterOpts{Tickets: uint64(i%3) + 1})
			tickets = append(tickets, uint64(i%3)+1)
		}
		b.AddSlave("local", bus.SlaveOpts{})
		b.AddSlave("uplink", bus.SlaveOpts{})
		mgr, err := core.NewStaticLottery(core.StaticConfig{
			Tickets: tickets,
			Source:  prng.NewXorShift64Star(prng.Derive(boundarySeed, tag+"/arb")),
		})
		if err != nil {
			t.Fatal(err)
		}
		b.SetArbiter(arb.NewStaticLottery(mgr))
		return b
	}
	sys, bridges, err := topology.NewChain(
		[]topology.ChainSegment{
			{Name: "west", Bus: mkSeg("west", false)},
			{Name: "east", Bus: mkSeg("east", true)},
		},
		[]topology.BridgeConfig{{SrcSlave: 1, DstMaster: 0, DstSlave: 0, Delay: 2, FifoCap: 16}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(25000); err != nil {
		t.Fatal(err)
	}
	if v := check.AuditSystem(sys); len(v) != 0 {
		t.Fatalf("system audit: %v", v)
	}
	st := bridges[0].Stats()
	if st.WordsIn == 0 {
		t.Fatal("no words crossed the bridge; conservation test is vacuous")
	}
	if st.WordsIn != st.WordsOut+st.WordsWaiting+st.WordsDropped {
		t.Errorf("bridge ledger: in %d != out %d + waiting %d + dropped %d",
			st.WordsIn, st.WordsOut, st.WordsWaiting, st.WordsDropped)
	}
	// Everything segment B's collector credits to the bridge master was
	// put there by the bridge.
	if got := sys.Bus(1).Collector().Words(0); got > st.WordsOut {
		t.Errorf("segment east counts %d bridge words but the bridge injected only %d", got, st.WordsOut)
	}
}
