// Command lotterysim runs a JSON-configured shared-bus simulation and
// prints per-master bandwidth and latency statistics.
//
// Usage:
//
//	lotterysim -config system.json
//	lotterysim -sample > system.json   # print a starter configuration
//	lotterysim < system.json           # read the configuration from stdin
//	lotterysim -config system.json -replicate 8 -parallel 4
//	lotterysim -config system.json -cpuprofile cpu.pb.gz
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lotterybus/internal/prof"
	"lotterybus/internal/runner"
)

func main() {
	os.Exit(realMain())
}

// fail prints err and returns the process exit code.
func fail(err error) int {
	fmt.Fprintln(os.Stderr, "lotterysim:", err)
	return 1
}

// realMain runs the tool and returns its exit code, so deferred cleanup
// (profile flushing, file closing) runs before the process exits.
func realMain() (code int) {
	path := flag.String("config", "", "path to a JSON system configuration (default: stdin)")
	sample := flag.Bool("sample", false, "print a sample configuration and exit")
	vcdPath := flag.String("vcd", "", "write a VCD waveform of the run to this path")
	waveform := flag.Int("waveform", 0, "print an ASCII waveform of the first N cycles")
	replicate := flag.Int("replicate", 1, "run N seed-replicas of the configuration (seed, seed+1, ...)")
	parallel := flag.Int("parallel", 0,
		"replica workers (0 = $"+runner.EnvVar+" then GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this path")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile at exit to this path")
	flag.Parse()

	if *sample {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(SampleConfig()); err != nil {
			return fail(err)
		}
		return 0
	}

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		return fail(err)
	}
	defer func() {
		if err := stopProf(); err != nil && code == 0 {
			code = fail(err)
		}
	}()

	in := os.Stdin
	if *path != "" {
		f, err := os.Open(*path)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		in = f
	}
	cfg, err := ParseConfig(in)
	if err != nil {
		return fail(err)
	}
	if *replicate > 1 {
		if *vcdPath != "" || *waveform > 0 {
			fmt.Fprintln(os.Stderr, "lotterysim: -vcd and -waveform require -replicate 1")
			return 1
		}
		// Each replica is an independent simulation of the same system
		// at seed, seed+1, ...; replicas run on the worker pool and the
		// reports print in replica order regardless of worker count.
		reports, err := runner.Map(runner.Workers(*parallel), *replicate, func(i int) (string, error) {
			c := *cfg
			c.Seed = cfg.Seed + uint64(i)
			sys, err := c.Build()
			if err != nil {
				return "", err
			}
			if err := sys.Run(c.Cycles); err != nil {
				return "", err
			}
			return sys.Report().String(), nil
		})
		if err != nil {
			return fail(err)
		}
		for i, rep := range reports {
			fmt.Printf("==== replica %d (seed %d) ====\n%s\n", i, cfg.Seed+uint64(i), rep)
		}
		return code
	}
	sys, err := cfg.Build()
	if err != nil {
		return fail(err)
	}
	if *vcdPath != "" || *waveform > 0 {
		sys.EnableTrace(0)
	}
	if err := sys.Run(cfg.Cycles); err != nil {
		return fail(err)
	}
	fmt.Println(sys.Report())
	if *waveform > 0 {
		fmt.Println()
		fmt.Print(sys.Waveform(0, *waveform))
	}
	if *vcdPath != "" {
		f, err := os.Create(*vcdPath)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := sys.WriteVCD(f); err != nil {
			return fail(err)
		}
		fmt.Printf("\nVCD written to %s\n", *vcdPath)
	}
	return code
}
