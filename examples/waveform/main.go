// Waveform: record per-cycle bus ownership and render it — the Fig. 5
// style view of how TDMA slot reservations and lottery grants differ on
// the wire. Also emits a VCD file loadable in GTKWave.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lotterybus"
)

func build(seed uint64) *lotterybus.System {
	sys := lotterybus.NewSystem(lotterybus.Config{Seed: seed})
	mem := sys.AddSlave("mem", 0)
	// Three masters with phase-shifted periodic 6-word bursts, as in the
	// paper's Fig. 5 alignment study.
	for i := 0; i < 3; i++ {
		sys.AddMaster(fmt.Sprintf("M%d", i+1), 1,
			lotterybus.PeriodicTraffic(18, int64(7+6*i), 6, mem))
	}
	return sys
}

func main() {
	// TDMA: contiguous 6-slot reservations; requests arrive phase-
	// shifted by 7, so each just misses its block.
	tdma := build(1)
	if err := tdma.UseTDMA(6, false); err != nil {
		log.Fatal(err)
	}
	tdma.EnableTrace(0)
	if err := tdma.Run(72); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Single-level TDMA, requests misaligned with reservations:")
	fmt.Println(tdma.Waveform(0, 72))

	// The same traffic under the lottery: grants issue immediately.
	lot := build(1)
	if err := lot.UseLottery(); err != nil {
		log.Fatal(err)
	}
	lot.EnableTrace(0)
	if err := lot.Run(72); err != nil {
		log.Fatal(err)
	}
	fmt.Println("LOTTERYBUS, same request pattern:")
	fmt.Println(lot.Waveform(0, 72))

	// Dump the lottery trace as VCD for a waveform viewer.
	path := filepath.Join(os.TempDir(), "lotterybus_trace.vcd")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := lot.WriteVCD(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VCD written to %s (open with GTKWave)\n", path)
}
