package traffic

import (
	"encoding/json"
	"fmt"
	"io"
)

// traceFile is the on-disk JSON schema of a recorded workload.
type traceFile struct {
	// Version guards the format.
	Version int `json:"version"`
	// Arrivals is the recorded sequence, sorted by cycle.
	Arrivals []Arrival `json:"arrivals"`
}

// traceFileVersion is the current schema version.
const traceFileVersion = 1

// WriteTrace serializes a trace as JSON — the way a captured stochastic
// workload is frozen so several communication architectures can be
// compared under byte-identical traffic (the paper's methodology).
func WriteTrace(w io.Writer, t *Trace) error {
	if t == nil {
		return fmt.Errorf("traffic: nil trace")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(traceFile{Version: traceFileVersion, Arrivals: t.Arrivals})
}

// ReadTrace deserializes a trace written by WriteTrace, validating
// ordering and payloads.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f traceFile
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("traffic: parsing trace: %w", err)
	}
	if f.Version != traceFileVersion {
		return nil, fmt.Errorf("traffic: unsupported trace version %d", f.Version)
	}
	var prev int64 = -1
	for i, a := range f.Arrivals {
		if a.Cycle < 0 {
			return nil, fmt.Errorf("traffic: arrival %d has negative cycle", i)
		}
		if a.Cycle < prev {
			return nil, fmt.Errorf("traffic: arrival %d out of order (cycle %d after %d)", i, a.Cycle, prev)
		}
		if a.Words <= 0 {
			return nil, fmt.Errorf("traffic: arrival %d has %d words", i, a.Words)
		}
		if a.Slave < 0 {
			return nil, fmt.Errorf("traffic: arrival %d has negative slave", i)
		}
		prev = a.Cycle
	}
	return &Trace{Arrivals: f.Arrivals}, nil
}
