package fault

import "testing"

// FuzzParseConfig drives arbitrary bytes through the strict JSON config
// parser: it must never panic, and any accepted configuration must
// survive its own validation and build an injector for a generous bus.
func FuzzParseConfig(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"seed": 1, "slave_error": 0.01}`))
	f.Add([]byte(`{"word_error": 0.5, "split_hang": 1}`))
	f.Add([]byte(`{"babblers": [{"master": 0, "load": 1, "words": 16, "slave": 1, "start": 10, "stop": 20}]}`))
	f.Add([]byte(`{"slave_error": 2}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := ParseConfig(data)
		if err != nil {
			return
		}
		// Parse validated rates but not indices; re-validate against a
		// bus large enough for any sane config and check that accepted
		// ones construct.
		if err := cfg.Validate(64, 64); err != nil {
			return
		}
		inj, err := New(cfg, 64, 64)
		if err != nil {
			t.Fatalf("validated config failed New: %v", err)
		}
		for cyc := int64(0); cyc < 64; cyc++ {
			inj.ErrorResponse(cyc, 0, 0)
			inj.WordError(cyc, 0, 0)
			inj.SplitHang(cyc, 0, 0)
			inj.Babble(cyc, 0)
		}
	})
}
