package expt

import (
	"fmt"

	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/core"
	"lotterybus/internal/prng"
	"lotterybus/internal/runner"
	"lotterybus/internal/stats"
	"lotterybus/internal/traffic"
)

// SplitAblation quantifies split transactions (paper §2.3's
// "multithreaded transactions"): four masters read from a slow memory
// under the lottery. In the blocking design the slave's access latency
// holds the bus; in the split design the bus is released during the
// latency window and other masters' transactions overlap it.
type SplitAblation struct {
	Rows []SplitRow
}

// SplitRow is one memory-latency configuration.
type SplitRow struct {
	// LatencyCycles is the memory's total access latency per 4-word
	// read (wait states in blocking mode, SplitLatency in split mode).
	LatencyCycles int
	// BlockingThroughput and SplitThroughput are words/cycle.
	BlockingThroughput, SplitThroughput float64
	// BlockingLatency and SplitLatency are the per-word message
	// latencies of the highest-weight master.
	BlockingLatency, SplitMsgLatency float64
}

// Table renders the ablation.
func (r *SplitAblation) Table() *stats.Table {
	t := stats.NewTable("Split transactions vs blocking slave (lottery, 4 masters, 4-word reads)",
		"memory latency", "blocking words/cyc", "split words/cyc", "blocking C4 cyc/word", "split C4 cyc/word")
	for _, row := range r.Rows {
		t.AddRow(
			fmt.Sprintf("%d", row.LatencyCycles),
			fmt.Sprintf("%.3f", row.BlockingThroughput),
			fmt.Sprintf("%.3f", row.SplitThroughput),
			fmt.Sprintf("%.2f", row.BlockingLatency),
			fmt.Sprintf("%.2f", row.SplitMsgLatency),
		)
	}
	return t
}

// RunSplitAblation sweeps the memory latency.
func RunSplitAblation(o Options) (*SplitAblation, error) {
	o = o.fill()
	const msgWords = 4
	run := func(latency int, split bool) (*bus.Bus, error) {
		mgr, err := core.NewStaticLottery(core.StaticConfig{
			Tickets: []uint64{1, 2, 3, 4},
			Source:  prng.NewXorShift64Star(prng.Derive(o.Seed, "split")),
		})
		if err != nil {
			return nil, err
		}
		b := bus.New(bus.Config{MaxBurst: 16})
		for i := 0; i < fourMasters; i++ {
			b.AddMaster(fmt.Sprintf("C%d", i+1), &traffic.Saturating{Words: msgWords}, bus.MasterOpts{})
		}
		if split {
			b.AddSlave("mem", bus.SlaveOpts{SplitLatency: latency})
		} else {
			// The blocking equivalent stalls every word by
			// latency/msgWords cycles: the same total access time held
			// on the bus.
			b.AddSlave("mem", bus.SlaveOpts{WaitStates: latency / msgWords})
		}
		b.SetArbiter(arb.NewStaticLottery(mgr))
		if err := b.Run(o.Cycles); err != nil {
			return nil, err
		}
		return b, nil
	}

	latencies := []int{4, 16, 64}
	rows, err := runner.Map(o.workers(), len(latencies), func(k int) (SplitRow, error) {
		latency := latencies[k]
		blocking, err := run(latency, false)
		if err != nil {
			return SplitRow{}, err
		}
		split, err := run(latency, true)
		if err != nil {
			return SplitRow{}, err
		}
		bc, sc := blocking.Collector(), split.Collector()
		return SplitRow{
			LatencyCycles:      latency,
			BlockingThroughput: float64(bc.TotalWords()) / float64(bc.Cycles()),
			SplitThroughput:    float64(sc.TotalWords()) / float64(sc.Cycles()),
			BlockingLatency:    bc.PerWordLatency(3),
			SplitMsgLatency:    sc.PerWordLatency(3),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &SplitAblation{Rows: rows}, nil
}
