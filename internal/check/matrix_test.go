package check

import (
	"testing"
)

// TestMatrix runs the full verification matrix at a reduced cycle count
// (the 20000-cycle version runs as the fast-forward equivalence suite in
// internal/bus and as the CI invariant smoke) and demands a spotless
// report: every cell's engines agree and every invariant holds.
func TestMatrix(t *testing.T) {
	res, err := RunMatrix(5000, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := len(BusConfigs()) * len(Arbiters()) * len(TrafficClasses())
	if len(res.Cells) != want {
		t.Fatalf("matrix ran %d cells, want %d", len(res.Cells), want)
	}
	for _, c := range res.Cells {
		for _, v := range c.Violations {
			t.Errorf("%s: %s", c.Name(), v)
		}
	}
	if d := res.Disagreements(); d != 0 {
		t.Errorf("%d cells diverged between engines", d)
	}
	if res.Fingerprint() == 0 {
		t.Error("matrix fingerprint is zero")
	}
}

// TestMatrixDeterministicAcrossWorkers proves the matrix fingerprint is
// independent of the worker count — each cell owns its PRNG streams.
func TestMatrixDeterministicAcrossWorkers(t *testing.T) {
	serial, err := RunMatrix(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	wide, err := RunMatrix(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s, w := serial.Fingerprint(), wide.Fingerprint(); s != w {
		t.Fatalf("matrix fingerprint depends on workers: 1 worker %#x, 8 workers %#x", s, w)
	}
}
