package simcfg

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lotterybus/internal/core"
)

func TestParseConfigValid(t *testing.T) {
	in := `{
		"cycles": 1000, "seed": 7,
		"arbiter": {"kind": "lottery"},
		"slaves": [{"name": "mem"}],
		"masters": [
			{"name": "cpu", "weight": 2, "traffic": {"kind": "saturating", "msgWords": 8}}
		]
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Cycles != 1000 || len(cfg.Masters) != 1 || cfg.Masters[0].Weight != 2 {
		t.Fatalf("config %+v", cfg)
	}
}

func TestParseConfigRejects(t *testing.T) {
	cases := map[string]string{
		"bad json":      `{`,
		"unknown field": `{"cycles": 1, "bogus": true, "slaves": [{"name":"m"}], "masters": [{"name":"c","traffic":{"kind":"saturating"}}]}`,
		"no cycles":     `{"slaves": [{"name":"m"}], "masters": [{"name":"c","traffic":{"kind":"saturating"}}]}`,
		"no masters":    `{"cycles": 1, "slaves": [{"name":"m"}], "masters": []}`,
		"no slaves":     `{"cycles": 1, "slaves": [], "masters": [{"name":"c","traffic":{"kind":"saturating"}}]}`,
		"bad slave ref": `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"saturating","slave":3}}]}`,
		// All-zero weights describe no bandwidth split: the facade would
		// silently promote every weight to 1 and run a uniform lottery
		// the user never asked for.
		"all-zero weights": `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [
			{"name":"a","weight":0,"traffic":{"kind":"saturating"}},
			{"name":"b","weight":0,"traffic":{"kind":"saturating"}}]}`,
		"negative slave ref": `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"saturating","slave":-1}}]}`,
		// defaultWords would silently substitute 16 for a negative size.
		"negative msgWords": `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"saturating","msgWords":-4}}]}`,
		"load above 1":      `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"bernoulli","load":1.5}}]}`,
		"negative load":     `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"bernoulli","load":-0.1}}]}`,
		"loadOn above 1":    `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"bursty","load":0.2,"loadOn":1.2}}]}`,
		"negative meanOn":   `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"bursty","load":0.2,"meanOn":-3}}]}`,
		"negative period":   `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"periodic","period":-7}}]}`,
		"negative phase":    `{"cycles": 1, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"periodic","period":7,"phase":-1}}]}`,
		"negative maxBurst": `{"cycles": 1, "maxBurst": -16, "slaves": [{"name":"m"}], "masters": [{"name":"c","weight":1,"traffic":{"kind":"saturating"}}]}`,
	}
	for name, in := range cases {
		if _, err := ParseConfig(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestParseConfigRejectsTooManyMasters proves the core.MaxMasters
// fabric bound is enforced at parse time instead of panicking in core.
func TestParseConfigRejectsTooManyMasters(t *testing.T) {
	var b strings.Builder
	b.WriteString(`{"cycles": 1, "slaves": [{"name":"m"}], "masters": [`)
	for i := 0; i < core.MaxMasters+1; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"name":"m%d","weight":1,"traffic":{"kind":"saturating"}}`, i)
	}
	b.WriteString(`]}`)
	if _, err := ParseConfig(strings.NewReader(b.String())); err == nil {
		t.Fatal("over-cap master config accepted")
	}
}

func TestBuildAndRunAllArbiters(t *testing.T) {
	for _, kind := range []string{"lottery", "dynamic-lottery", "compensated-lottery", "priority", "tdma", "tdma1", "round-robin", "token-ring"} {
		cfg := SampleConfig()
		cfg.Cycles = 5000
		cfg.Arbiter.Kind = kind
		sys, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if err := sys.Run(cfg.Cycles); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if sys.Report().Utilization == 0 {
			t.Fatalf("%s: idle simulation", kind)
		}
	}
}

func TestBuildRejectsUnknownKinds(t *testing.T) {
	cfg := SampleConfig()
	cfg.Arbiter.Kind = "fcfs"
	if _, err := cfg.Build(); err == nil {
		t.Fatal("unknown arbiter accepted")
	}
	cfg = SampleConfig()
	cfg.Masters[0].Traffic.Kind = "warp"
	if _, err := cfg.Build(); err == nil {
		t.Fatal("unknown traffic accepted")
	}
	cfg = SampleConfig()
	cfg.Masters[0].Traffic = TrafficConfig{Kind: "periodic"}
	if _, err := cfg.Build(); err == nil {
		t.Fatal("zero-period periodic accepted")
	}
}

func TestShippedConfigsRun(t *testing.T) {
	files, err := filepath.Glob("testdata/*.json")
	if err != nil || len(files) < 3 {
		t.Fatalf("testdata configs: %v %v", files, err)
	}
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := ParseConfig(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		sys, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if err := sys.Run(20000); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if sys.Report().Utilization == 0 {
			t.Fatalf("%s: idle simulation", path)
		}
	}
}

func TestSampleConfigRoundTrips(t *testing.T) {
	raw, err := json.Marshal(SampleConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := ParseConfig(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("sample config invalid: %v", err)
	}
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(10000); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSlaveFromConfig(t *testing.T) {
	in := `{
		"cycles": 50, "seed": 3,
		"arbiter": {"kind": "lottery"},
		"slaves": [{"name": "ddr", "splitLatency": 10}],
		"masters": [
			{"name": "cpu", "weight": 1, "traffic": {"kind": "periodic", "period": 40, "msgWords": 4}}
		]
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(cfg.Cycles); err != nil {
		t.Fatal(err)
	}
	// Address beat + 10-cycle split latency + 4 data words = 14.
	if lat := sys.Report().Masters[0].AvgMessageLatency; lat != 14 {
		t.Fatalf("split latency %v", lat)
	}
}

func TestLotterySharesFromConfig(t *testing.T) {
	in := `{
		"cycles": 100000, "seed": 3,
		"arbiter": {"kind": "lottery"},
		"slaves": [{"name": "mem"}],
		"masters": [
			{"name": "a", "weight": 1, "traffic": {"kind": "saturating", "msgWords": 16}},
			{"name": "b", "weight": 3, "traffic": {"kind": "saturating", "msgWords": 16}}
		]
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(cfg.Cycles); err != nil {
		t.Fatal(err)
	}
	r := sys.Report()
	if math.Abs(r.Masters[1].BandwidthFraction-0.75) > 0.02 {
		t.Fatalf("weighted share %v", r.Masters[1].BandwidthFraction)
	}
}

func TestFaultsAndResilienceFromConfig(t *testing.T) {
	in := `{
		"cycles": 20000, "seed": 9,
		"arbiter": {"kind": "lottery"},
		"slaves": [{"name": "mem"}],
		"masters": [
			{"name": "a", "weight": 1, "traffic": {"kind": "saturating", "msgWords": 16}},
			{"name": "b", "weight": 3, "traffic": {"kind": "saturating", "msgWords": 16}}
		],
		"resilience": {"retryLimit": 8, "retryBackoff": 2, "starvationThreshold": 1000},
		"faults": {"slaveError": 0.02}
	}`
	cfg, err := ParseConfig(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := cfg.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(cfg.Cycles); err != nil {
		t.Fatal(err)
	}
	r := sys.Report()
	var retries, errWords int64
	for _, m := range r.Masters {
		retries += m.Retries
		errWords += m.ErrorWords
	}
	if retries == 0 || errWords == 0 {
		t.Fatalf("configured faults produced no resilience activity: %+v", r.Masters)
	}
	if !strings.Contains(r.String(), "retries") {
		t.Fatalf("faulty report lacks resilience columns:\n%s", r)
	}
}

func TestParseConfigRejectsBadFaults(t *testing.T) {
	base := func(extra string) string {
		return `{
			"cycles": 100, "seed": 1,
			"arbiter": {"kind": "lottery"},
			"slaves": [{"name": "mem"}],
			"masters": [{"name": "a", "weight": 1, "traffic": {"kind": "saturating"}}],
			` + extra + `}`
	}
	cases := map[string]string{
		"negative retry limit": base(`"resilience": {"retryLimit": -1}`),
		"negative timeout":     base(`"resilience": {"splitTimeout": -5}`),
		"babbler bad master":   base(`"faults": {"babblers": [{"master": 4, "load": 0.5}]}`),
		"babbler bad slave":    base(`"faults": {"babblers": [{"master": 0, "load": 0.5, "slave": 9}]}`),
		"unknown fault field":  base(`"faults": {"slaveErrorRate": 0.1}`),
	}
	for name, in := range cases {
		if _, err := ParseConfig(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// An out-of-range rate parses (bounds are checked when the injector
	// is built) but must fail Build.
	cfg, err := ParseConfig(strings.NewReader(base(`"faults": {"slaveError": 2}`)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Build(); err == nil {
		t.Fatal("out-of-range rate built")
	}
}
