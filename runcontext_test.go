package lotterybus

import (
	"context"
	"testing"
)

// chunkFixture builds a three-master mixed-traffic system exercising
// both engines (bernoulli/bursty arrivals fast-forward; the hook-free
// path is eligible for the event engine).
func chunkFixture(t *testing.T, kind string) *System {
	t.Helper()
	sys := NewSystem(Config{Seed: 7})
	sys.AddSlave("mem", 1)
	g1, err := BernoulliTraffic(0.3, 8, 0, 99)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BurstyTraffic(0.2, 0.8, 200, 16, 0, 123)
	if err != nil {
		t.Fatal(err)
	}
	sys.AddMaster("a", 3, g1)
	sys.AddMaster("b", 1, g2)
	sys.AddMaster("c", 2, SaturatingTraffic(4, 0))
	var selErr error
	switch kind {
	case "lottery":
		selErr = sys.UseLottery()
	case "tdma":
		selErr = sys.UseTDMA(4, true)
	case "round-robin":
		selErr = sys.UseRoundRobin()
	}
	if selErr != nil {
		t.Fatal(selErr)
	}
	return sys
}

// TestRunContextBitIdentical pins the contract RunContext's chunking
// rests on: a run sliced at arbitrary boundaries produces the same
// fingerprint as one uninterrupted Run, for both a cancellable and a
// background context.
func TestRunContextBitIdentical(t *testing.T) {
	for _, kind := range []string{"lottery", "tdma", "round-robin"} {
		one := chunkFixture(t, kind)
		if err := one.Run(200000); err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		chunked := chunkFixture(t, kind)
		// Drive runChunked directly at a tiny chunk size so the test
		// exercises many boundaries without simulating RunChunk cycles.
		var done int64
		for done < 200000 {
			step := int64(7777)
			if done+step > 200000 {
				step = 200000 - done
			}
			if err := chunked.RunContext(ctx, step); err != nil {
				t.Fatal(err)
			}
			done += step
		}
		if g, w := chunked.Collector().Fingerprint(), one.Collector().Fingerprint(); g != w {
			t.Fatalf("%s: chunked fingerprint %016x != single-run %016x", kind, g, w)
		}
	}
}

// TestRunContextCancelStopsEarly proves cancellation actually stops the
// simulation: a pre-cancelled context runs zero cycles, and one
// cancelled mid-run leaves the system short of its target with
// ctx.Err() reported.
func TestRunContextCancelStopsEarly(t *testing.T) {
	sys := chunkFixture(t, "lottery")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := sys.RunContext(ctx, 10*RunChunk); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if sys.Cycle() != 0 {
		t.Fatalf("pre-cancelled RunContext simulated %d cycles", sys.Cycle())
	}
}

// TestReplicaSetRunContextBitIdentical proves the lane engine's chunked
// context run matches a single Run per replica.
func TestReplicaSetRunContextBitIdentical(t *testing.T) {
	build := func() *ReplicaSet {
		rs := NewReplicaSet(Config{Seed: 5}, 3)
		rs.AddSlave("mem", 0)
		rs.AddMaster("cpu", 3, func(replica int) (Generator, error) {
			return BernoulliTraffic(0.4, 8, 0, 1000+uint64(replica))
		})
		rs.AddMaster("dma", 1, func(replica int) (Generator, error) {
			return SaturatingTraffic(16, 0), nil
		})
		if err := rs.UseLottery(); err != nil {
			t.Fatal(err)
		}
		return rs
	}
	one := build()
	if err := one.Run(120000); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	chunked := build()
	for done := int64(0); done < 120000; {
		step := int64(9999)
		if done+step > 120000 {
			step = 120000 - done
		}
		if err := chunked.RunContext(ctx, step); err != nil {
			t.Fatal(err)
		}
		done += step
	}
	for i := 0; i < 3; i++ {
		if g, w := chunked.Collector(i).Fingerprint(), one.Collector(i).Fingerprint(); g != w {
			t.Fatalf("replica %d: chunked %016x != single %016x", i, g, w)
		}
	}
}
