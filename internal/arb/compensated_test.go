package arb

import (
	"math"
	"testing"

	"lotterybus/internal/bus"
	"lotterybus/internal/core"
	"lotterybus/internal/prng"
)

func newCompensated(t *testing.T, base []uint64, quantum int, seed uint64) *CompensatedLottery {
	t.Helper()
	mgr, err := core.NewDynamicLottery(core.DynamicConfig{
		Masters: len(base),
		Source:  prng.NewXorShift64Star(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCompensatedLottery(base, quantum, mgr)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCompensatedValidation(t *testing.T) {
	mgr, _ := core.NewDynamicLottery(core.DynamicConfig{
		Masters: 2, Source: prng.NewXorShift64Star(1),
	})
	if _, err := NewCompensatedLottery(nil, 16, mgr); err == nil {
		t.Fatal("empty base accepted")
	}
	if _, err := NewCompensatedLottery([]uint64{1, 2}, 0, mgr); err == nil {
		t.Fatal("zero quantum accepted")
	}
	if _, err := NewCompensatedLottery([]uint64{1, 0}, 16, mgr); err == nil {
		t.Fatal("zero ticket accepted")
	}
	if _, err := NewCompensatedLottery([]uint64{1, 2, 3}, 16, mgr); err == nil {
		t.Fatal("size mismatch accepted")
	}
}

func TestCompensationFactorUpdatesOnWin(t *testing.T) {
	c := newCompensated(t, []uint64{1, 1}, 16, 2)
	// Master 0 alone, pending 2 words of a 16-word quantum: after its
	// win, its effective holding inflates 8x.
	req := &fakeReq{pending: []bool{true, false}, words: []int{2, 0}}
	g, ok := c.Arbitrate(0, req)
	if !ok || g.Master != 0 || g.Words != 2 {
		t.Fatalf("grant %+v ok=%v", g, ok)
	}
	eff := c.EffectiveTickets()
	if eff[0] != 8 || eff[1] != 1 {
		t.Fatalf("effective tickets %v, want [8 1]", eff)
	}
	// A full-quantum win resets the factor.
	req.words[0] = 16
	if g, _ = c.Arbitrate(1, req); g.Words != 16 {
		t.Fatalf("grant %+v", g)
	}
	if eff := c.EffectiveTickets(); eff[0] != 1 {
		t.Fatalf("factor not reset: %v", eff)
	}
}

// sizedGen keeps the queue topped with fixed-size messages.
type sizedGen struct{ words int }

func (g *sizedGen) Tick(_ int64, queued int, emit func(words, slave int)) {
	for ; queued < 2; queued++ {
		emit(g.words, 0)
	}
}

// runMixedSizes runs two saturating masters with equal tickets but
// different message sizes (2 vs 16 words) under the given arbiter and
// returns their bandwidth fractions.
func runMixedSizes(t *testing.T, a bus.Arbiter) [2]float64 {
	t.Helper()
	b := bus.New(bus.Config{MaxBurst: 16})
	b.AddMaster("small", &sizedGen{words: 2}, bus.MasterOpts{Tickets: 1})
	b.AddMaster("large", &sizedGen{words: 16}, bus.MasterOpts{Tickets: 1})
	b.AddSlave("mem", bus.SlaveOpts{})
	b.SetArbiter(a)
	if err := b.Run(200000); err != nil {
		t.Fatal(err)
	}
	return [2]float64{
		b.Collector().BandwidthFraction(0),
		b.Collector().BandwidthFraction(1),
	}
}

func TestCompensationRestoresBandwidthProportionality(t *testing.T) {
	// Plain lottery: equal tickets but 2- vs 16-word messages skews
	// bandwidth to the large-message master (2/18 ~ 11% vs 89%).
	mgr, _ := core.NewStaticLottery(core.StaticConfig{
		Tickets: []uint64{1, 1},
		Source:  prng.NewXorShift64Star(5),
	})
	plain := runMixedSizes(t, NewStaticLottery(mgr))
	if plain[0] > 0.2 {
		t.Fatalf("plain lottery small-message share %v; skew expected", plain[0])
	}

	// Compensated lottery: bandwidth returns to the 50/50 the equal
	// tickets promise.
	comp := newCompensated(t, []uint64{1, 1}, 16, 5)
	fixed := runMixedSizes(t, comp)
	if math.Abs(fixed[0]-0.5) > 0.03 || math.Abs(fixed[1]-0.5) > 0.03 {
		t.Fatalf("compensated shares %v, want ~50/50", fixed)
	}
}

func TestCompensationPreservesWeightedRatios(t *testing.T) {
	// Tickets 1:3 with mixed sizes must yield 25/75 bandwidth.
	comp := newCompensated(t, []uint64{1, 3}, 16, 7)
	b := bus.New(bus.Config{MaxBurst: 16})
	b.AddMaster("small", &sizedGen{words: 4}, bus.MasterOpts{})
	b.AddMaster("large", &sizedGen{words: 16}, bus.MasterOpts{})
	b.AddSlave("mem", bus.SlaveOpts{})
	b.SetArbiter(comp)
	if err := b.Run(300000); err != nil {
		t.Fatal(err)
	}
	got := b.Collector().BandwidthFraction(1)
	if math.Abs(got-0.75) > 0.03 {
		t.Fatalf("weighted compensated share %v, want 0.75", got)
	}
}

func TestCompensatedNeverGrantsNonRequester(t *testing.T) {
	c := newCompensated(t, []uint64{1, 2, 3}, 16, 9)
	req := &fakeReq{pending: []bool{false, true, false}, words: []int{0, 5, 0}}
	for i := 0; i < 200; i++ {
		g, ok := c.Arbitrate(int64(i), req)
		if !ok || g.Master != 1 {
			t.Fatalf("grant %+v ok=%v", g, ok)
		}
	}
}
