// Quickstart: build a four-master LOTTERYBUS system, saturate it, and
// watch bandwidth follow the ticket assignment 1:2:3:4.
package main

import (
	"fmt"
	"log"

	"lotterybus"
)

func main() {
	sys := lotterybus.NewSystem(lotterybus.Config{Seed: 2026})
	mem := sys.AddSlave("shared-memory", 0)

	// Four masters, each always ready to send 16-word messages, holding
	// 1, 2, 3 and 4 lottery tickets respectively.
	for i, name := range []string{"cpu", "dsp", "dma", "io"} {
		sys.AddMaster(name, uint64(i+1), lotterybus.SaturatingTraffic(16, mem))
	}

	if err := sys.UseLottery(); err != nil {
		log.Fatal(err)
	}
	if err := sys.Run(500000); err != nil {
		log.Fatal(err)
	}

	fmt.Println(sys.Report())
	fmt.Println()
	fmt.Println("Each master's bandwidth share tracks its ticket holding (10/20/30/40%).")
	fmt.Printf("A 1-of-10 ticket holder wins a lottery within %d draws with 99.9%% probability.\n",
		lotterybus.DrawsForConfidence(1, 10, 0.999))
}
