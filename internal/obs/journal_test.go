package obs

import (
	"bufio"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestJournalEmitsParsableJSONL(t *testing.T) {
	var sb strings.Builder
	j := NewJournal(&sb)
	j.now = func() time.Time { return time.Unix(1700000000, 0) }
	j.Emit("run_start", map[string]any{"seed": 42, "config": "demo"})
	j.Emit("run_end", map[string]any{"cycles": 1000})

	sc := bufio.NewScanner(strings.NewReader(sb.String()))
	var events []map[string]any
	for sc.Scan() {
		var rec map[string]any
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %q: %v", sc.Text(), err)
		}
		events = append(events, rec)
	}
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if events[0]["event"] != "run_start" || events[0]["seed"] != float64(42) {
		t.Fatalf("run_start mangled: %v", events[0])
	}
	if events[0]["seq"] != float64(1) || events[1]["seq"] != float64(2) {
		t.Fatalf("sequence numbers wrong: %v / %v", events[0]["seq"], events[1]["seq"])
	}
	if _, err := time.Parse(time.RFC3339Nano, events[0]["t"].(string)); err != nil {
		t.Fatalf("timestamp not RFC3339Nano: %v", err)
	}
}

func TestJournalObserverSeesEveryEvent(t *testing.T) {
	j := NewJournal(nil)
	var seen []string
	j.Observe(func(event string, fields map[string]any) { seen = append(seen, event) })
	j.Emit("a", nil)
	j.Emit("b", map[string]any{"k": 1})
	if len(seen) != 2 || seen[0] != "a" || seen[1] != "b" {
		t.Fatalf("observer saw %v", seen)
	}
}

func TestNilJournalIsNoOp(t *testing.T) {
	var j *Journal
	j.Emit("anything", map[string]any{"x": 1}) // must not panic
	j.Observe(func(string, map[string]any) {})
}
