package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Fatalf("Workers(7) = %d", got)
	}
	t.Setenv(EnvVar, "3")
	if got := Workers(0); got != 3 {
		t.Fatalf("Workers(0) with %s=3 = %d", EnvVar, got)
	}
	if got := Workers(2); got != 2 {
		t.Fatalf("explicit count must override env; got %d", got)
	}
	t.Setenv(EnvVar, "bogus")
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) with junk env = %d", got)
	}
	t.Setenv(EnvVar, "-4")
	if got := Workers(0); got < 1 {
		t.Fatalf("Workers(0) with negative env = %d", got)
	}
}

func TestMapOrderingAndParity(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	serial, err := Map(1, 100, fn)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 200} {
		par, err := Map(workers, 100, fn)
		if err != nil {
			t.Fatal(err)
		}
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: result[%d] = %d, serial %d", workers, i, par[i], serial[i])
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(4, 0, func(int) (int, error) { return 0, nil })
	if err != nil || out != nil {
		t.Fatalf("Map over zero points = %v, %v", out, err)
	}
}

func TestMapLowestIndexedError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	fn := func(i int) (int, error) {
		switch i {
		case 3:
			return 0, errLow
		case 7:
			return 0, errHigh
		}
		return i, nil
	}
	for _, workers := range []int{1, 2, 8} {
		if _, err := Map(workers, 10, fn); err != errLow {
			t.Fatalf("workers=%d: err = %v, want lowest-indexed %v", workers, err, errLow)
		}
	}
}

func TestMapRunsEveryPoint(t *testing.T) {
	var ran atomic.Int64
	_, err := Map(4, 50, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 50 {
		t.Fatalf("ran %d of 50 points", ran.Load())
	}
}

func TestDo(t *testing.T) {
	var a, b atomic.Bool
	err := Do(2,
		func() error { a.Store(true); return nil },
		func() error { b.Store(true); return nil },
	)
	if err != nil || !a.Load() || !b.Load() {
		t.Fatalf("Do: err=%v a=%v b=%v", err, a.Load(), b.Load())
	}
	want := fmt.Errorf("boom")
	if err := Do(2, func() error { return nil }, func() error { return want }); err != want {
		t.Fatalf("Do error = %v", err)
	}
}

func TestMapCtxBackgroundMatchesMap(t *testing.T) {
	fn := func(i int) (int, error) { return i * i, nil }
	want, err := Map(4, 40, fn)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MapCtx(context.Background(), 4, 40, fn)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("point %d: %d vs %d", i, got[i], want[i])
		}
	}
}

func TestMapCtxStopsDispatchingOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	_, err := MapCtx(ctx, 2, 1000, func(i int) (int, error) {
		if ran.Add(1) == 10 {
			cancel()
		}
		return i, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Two workers may each have had one point in flight at cancel time,
	// but dispatch must stop almost immediately afterwards.
	if n := ran.Load(); n >= 1000 || n < 10 {
		t.Fatalf("ran %d of 1000 points after cancel at 10", n)
	}
}

func TestMapCtxPreCancelledRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	if _, err := MapCtx(ctx, 4, 50, func(i int) (int, error) {
		ran.Add(1)
		return i, nil
	}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("pre-cancelled MapCtx ran %d points", ran.Load())
	}
}
