// Package stats collects and reports the two performance metrics the
// LOTTERYBUS paper evaluates communication architectures on:
//
//   - bandwidth fraction: the share of total bus cycles in which a given
//     master transferred a word (Figs. 4, 6(a), 12(a), Table 1);
//   - per-word communication latency: the average number of bus cycles
//     spent per transferred word, including both waiting time and the
//     data transfer itself (Figs. 6(b), 12(b), 12(c), Table 1).
//
// A Collector accumulates raw events from the bus model; the derived
// metrics are computed on demand.
package stats

import (
	"fmt"
	"math"
)

// Collector accumulates per-master transfer statistics over a simulation.
type Collector struct {
	n      int
	cycles int64 // total simulated bus cycles
	busy   int64 // cycles in which the bus carried a word or control beat
	words  []int64
	// control counts bus cycles spent on control signalling (split-
	// transaction address beats): busy, but not data.
	control []int64

	messages []int64
	// latencySum[i] is Σ over completed messages of
	// (completion cycle − arrival cycle + 1); dividing by the words of
	// completed messages yields the paper's per-word latency metric
	// (waiting plus transfer cycles per word).
	latencySum     []int64
	completedWords []int64
	waitSum        []int64 // Σ of (first-word grant − arrival)
	maxMsgLat      []int64
	grants         []int64
	hist           []*Histogram
}

// NewCollector returns a Collector for n masters.
func NewCollector(n int) *Collector {
	if n <= 0 {
		panic("stats: collector needs at least one master")
	}
	c := &Collector{
		n:              n,
		words:          make([]int64, n),
		control:        make([]int64, n),
		messages:       make([]int64, n),
		latencySum:     make([]int64, n),
		completedWords: make([]int64, n),
		waitSum:        make([]int64, n),
		maxMsgLat:      make([]int64, n),
		grants:         make([]int64, n),
		hist:           make([]*Histogram, n),
	}
	for i := range c.hist {
		c.hist[i] = NewHistogram()
	}
	return c
}

// N returns the number of masters tracked.
func (c *Collector) N() int { return c.n }

// AdvanceCycles adds cycles to the simulated-time denominator.
func (c *Collector) AdvanceCycles(cycles int64) { c.cycles += cycles }

// WordTransferred records a single word transferred by master m during
// one bus cycle.
func (c *Collector) WordTransferred(m int) {
	c.words[m]++
	c.busy++
}

// WordsTransferred records k words transferred by master m, one per bus
// cycle — the batched counterpart of WordTransferred used by the bus
// fast-forward engine. k calls to WordTransferred(m) and one call to
// WordsTransferred(m, k) leave the collector in identical states.
func (c *Collector) WordsTransferred(m int, k int64) {
	c.words[m] += k
	c.busy += k
}

// ControlCycle records a bus cycle consumed by master m's control
// signalling (e.g. a split-transaction address beat): the bus is busy
// but no data word moves.
func (c *Collector) ControlCycle(m int) {
	c.control[m]++
	c.busy++
}

// ControlCycles returns the control cycles consumed by master m.
func (c *Collector) ControlCycles(m int) int64 { return c.control[m] }

// Granted records an arbitration grant issued to master m.
func (c *Collector) Granted(m int) { c.grants[m]++ }

// MessageStarted records that the first word of a message from master m
// that arrived at cycle arrival was granted at cycle start.
func (c *Collector) MessageStarted(m int, arrival, start int64) {
	c.waitSum[m] += start - arrival
}

// MessageCompleted records a fully transferred message of the given word
// count that arrived at cycle arrival and completed at cycle completion
// (the cycle its last word transferred).
func (c *Collector) MessageCompleted(m int, words int, arrival, completion int64) {
	lat := completion - arrival + 1 // inclusive of the completing cycle
	c.messages[m]++
	c.latencySum[m] += lat
	c.completedWords[m] += int64(words)
	if lat > c.maxMsgLat[m] {
		c.maxMsgLat[m] = lat
	}
	if words > 0 {
		c.hist[m].Add(float64(lat) / float64(words))
	}
}

// Cycles returns the total simulated bus cycles.
func (c *Collector) Cycles() int64 { return c.cycles }

// Words returns the words transferred by master m.
func (c *Collector) Words(m int) int64 { return c.words[m] }

// TotalWords returns the words transferred by all masters.
func (c *Collector) TotalWords() int64 {
	var t int64
	for _, w := range c.words {
		t += w
	}
	return t
}

// Messages returns the completed message count for master m.
func (c *Collector) Messages(m int) int64 { return c.messages[m] }

// Grants returns the number of grants issued to master m.
func (c *Collector) Grants(m int) int64 { return c.grants[m] }

// BandwidthFraction returns the fraction of all simulated cycles in which
// master m was transferring a word, in [0, 1].
func (c *Collector) BandwidthFraction(m int) float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.words[m]) / float64(c.cycles)
}

// Utilization returns the fraction of cycles in which any word
// transferred; 1-Utilization() is the paper's "unutilized" band in
// Fig. 12(a).
func (c *Collector) Utilization() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.busy) / float64(c.cycles)
}

// PerWordLatency returns the average bus cycles per transferred word for
// master m — waiting plus transfer time over the words of completed
// messages. Returns NaN when the master completed no messages.
func (c *Collector) PerWordLatency(m int) float64 {
	if c.completedWords[m] == 0 {
		return math.NaN()
	}
	return float64(c.latencySum[m]) / float64(c.completedWords[m])
}

// AvgMessageLatency returns the mean arrival-to-completion latency of
// master m's messages, or NaN when none completed.
func (c *Collector) AvgMessageLatency(m int) float64 {
	if c.messages[m] == 0 {
		return math.NaN()
	}
	return float64(c.latencySum[m]) / float64(c.messages[m])
}

// AvgWait returns the mean cycles a message from master m waited between
// arrival and its first granted word, or NaN when none started.
func (c *Collector) AvgWait(m int) float64 {
	if c.messages[m] == 0 {
		return math.NaN()
	}
	return float64(c.waitSum[m]) / float64(c.messages[m])
}

// MaxMessageLatency returns the worst-case message latency observed for
// master m.
func (c *Collector) MaxMessageLatency(m int) int64 { return c.maxMsgLat[m] }

// LatencyHistogram returns the per-word latency histogram of master m.
func (c *Collector) LatencyHistogram(m int) *Histogram { return c.hist[m] }

// Fingerprint returns an FNV-1a hash over every accumulator in the
// collector — cycle and busy counters, all per-master arrays, and the
// full per-word latency histograms (bit patterns of the floating-point
// state included). Two collectors fed identical event sequences hash
// equal; any divergence in counts, timing, or histogram contents changes
// the value. The equivalence suite uses this to prove the fast-forward
// engine bit-identical to the naive cycle loop.
func (c *Collector) Fingerprint() uint64 {
	h := fnvMix(fnvOffset, uint64(c.n))
	h = fnvMix(h, uint64(c.cycles))
	h = fnvMix(h, uint64(c.busy))
	for m := 0; m < c.n; m++ {
		h = fnvMix(h, uint64(c.words[m]))
		h = fnvMix(h, uint64(c.control[m]))
		h = fnvMix(h, uint64(c.messages[m]))
		h = fnvMix(h, uint64(c.latencySum[m]))
		h = fnvMix(h, uint64(c.completedWords[m]))
		h = fnvMix(h, uint64(c.waitSum[m]))
		h = fnvMix(h, uint64(c.maxMsgLat[m]))
		h = fnvMix(h, uint64(c.grants[m]))
		h = c.hist[m].fingerprint(h)
	}
	return h
}

// fnvOffset is the FNV-1a 64-bit offset basis.
const fnvOffset = 14695981039346656037

// fnvMix folds one 64-bit value into an FNV-1a style hash.
func fnvMix(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}

// Summary returns a one-line summary for master m.
func (c *Collector) Summary(m int) string {
	return fmt.Sprintf("master %d: %.1f%% bw, %.2f cycles/word, %d msgs, %d words",
		m, 100*c.BandwidthFraction(m), c.PerWordLatency(m), c.messages[m], c.words[m])
}
