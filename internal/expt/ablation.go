package expt

import (
	"fmt"

	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/core"
	"lotterybus/internal/prng"
	"lotterybus/internal/runner"
	"lotterybus/internal/stats"
	"lotterybus/internal/traffic"
)

// SlackAblation compares the slack policies a hardware lottery manager
// can implement (DESIGN.md E13): exact sampling (behavioural reference),
// 32-bit modulo reduction, rejection/redraw, and absorb-last. Reported
// per policy: the bandwidth shares of four saturating masters with
// tickets 1:2:3:4, bus utilization (redraw burns idle cycles), and the
// redraw rate.
type SlackAblation struct {
	Rows []SlackRow
}

// SlackRow is one policy's outcome.
type SlackRow struct {
	Policy      core.SlackPolicy
	BW          [4]float64
	Utilization float64
	RedrawRate  float64
}

// Table renders the ablation.
func (r *SlackAblation) Table() *stats.Table {
	t := stats.NewTable("Slack policy ablation (tickets 1:2:3:4, saturated)",
		"policy", "C1 bw%", "C2 bw%", "C3 bw%", "C4 bw%", "utilization%", "redraw%")
	for _, row := range r.Rows {
		t.AddRow(row.Policy.String(),
			fmt.Sprintf("%.1f", 100*row.BW[0]),
			fmt.Sprintf("%.1f", 100*row.BW[1]),
			fmt.Sprintf("%.1f", 100*row.BW[2]),
			fmt.Sprintf("%.1f", 100*row.BW[3]),
			fmt.Sprintf("%.1f", 100*row.Utilization),
			fmt.Sprintf("%.2f", 100*row.RedrawRate),
		)
	}
	return t
}

// RunSlackAblation measures every slack policy on a saturated four-
// master system. The four policies simulate concurrently.
func RunSlackAblation(o Options) (*SlackAblation, error) {
	o = o.fill()
	policies := []core.SlackPolicy{
		core.PolicyExact, core.PolicyModulo, core.PolicyRedraw, core.PolicyAbsorbLast,
	}
	rows, err := runner.Map(o.workers(), len(policies), func(k int) (SlackRow, error) {
		policy := policies[k]
		mgr, err := core.NewStaticLottery(core.StaticConfig{
			Tickets: []uint64{1, 2, 3, 4},
			Source:  prng.NewXorShift64Star(prng.Derive(o.Seed, "slack/"+policy.String())),
			Policy:  policy,
		})
		if err != nil {
			return SlackRow{}, err
		}
		b, err := newBusyBus(o, []uint64{1, 2, 3, 4}, "slack/"+policy.String())
		if err != nil {
			return SlackRow{}, err
		}
		b.SetArbiter(arb.NewStaticLottery(mgr))
		if err := b.Run(o.Cycles); err != nil {
			return SlackRow{}, err
		}
		row := SlackRow{Policy: policy, Utilization: b.Collector().Utilization()}
		copy(row.BW[:], bandwidths(b.Collector()))
		if d := mgr.Draws(); d > 0 {
			row.RedrawRate = float64(mgr.Redraws()) / float64(d)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &SlackAblation{Rows: rows}, nil
}

// PipelineAblation quantifies the value of pipelining arbitration with
// data transfer (paper §4.1: the architecture "pipelines lottery manager
// operations with actual data transfers, to minimize idle bus cycles").
// The same saturated workload runs with 0, 1 and 2 cycles of arbitration
// overhead per grant.
type PipelineAblation struct {
	Rows []PipelineRow
}

// PipelineRow is one arbitration-latency configuration.
type PipelineRow struct {
	ArbLatency  int
	Utilization float64
	Throughput  float64 // words per cycle
	C4Latency   float64 // cycles/word of the heaviest master
}

// Table renders the ablation.
func (r *PipelineAblation) Table() *stats.Table {
	t := stats.NewTable("Arbitration pipelining ablation (lottery, saturated)",
		"arb cycles/grant", "utilization%", "words/cycle", "C4 cyc/word")
	for _, row := range r.Rows {
		t.AddRow(fmt.Sprintf("%d", row.ArbLatency),
			fmt.Sprintf("%.1f", 100*row.Utilization),
			fmt.Sprintf("%.3f", row.Throughput),
			fmt.Sprintf("%.2f", row.C4Latency),
		)
	}
	return t
}

// RunPipelineAblation measures arbitration-overhead sensitivity; the
// three latency configurations simulate concurrently.
func RunPipelineAblation(o Options) (*PipelineAblation, error) {
	o = o.fill()
	lats := []int{0, 1, 2}
	rows, err := runner.Map(o.workers(), len(lats), func(k int) (PipelineRow, error) {
		arbLat := lats[k]
		mgr, err := core.NewStaticLottery(core.StaticConfig{
			Tickets: []uint64{1, 2, 3, 4},
			Source:  prng.NewXorShift64Star(prng.Derive(o.Seed, "pipe")),
		})
		if err != nil {
			return PipelineRow{}, err
		}
		b := busWithArbLatency(o, arbLat)
		b.SetArbiter(arb.NewStaticLottery(mgr))
		if err := b.Run(o.Cycles); err != nil {
			return PipelineRow{}, err
		}
		col := b.Collector()
		return PipelineRow{
			ArbLatency:  arbLat,
			Utilization: col.Utilization(),
			Throughput:  float64(col.TotalWords()) / float64(col.Cycles()),
			C4Latency:   col.PerWordLatency(3),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &PipelineAblation{Rows: rows}, nil
}

// busWithArbLatency builds a saturated four-master bus with the given
// arbitration overhead.
func busWithArbLatency(_ Options, arbLat int) *bus.Bus {
	b := bus.New(bus.Config{MaxBurst: 16, ArbLatency: arbLat})
	for i := 0; i < fourMasters; i++ {
		b.AddMaster(fmt.Sprintf("C%d", i+1), &traffic.Saturating{Words: 16},
			bus.MasterOpts{Tickets: uint64(i + 1)})
	}
	b.AddSlave("mem", bus.SlaveOpts{})
	return b
}
