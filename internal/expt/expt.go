// Package expt reproduces every table and figure of the LOTTERYBUS
// paper's evaluation (plus the extension experiments listed in
// DESIGN.md). Each experiment is a pure function of an Options value,
// returns a typed result with the raw numbers, and renders itself as the
// rows/series the paper reports. The cmd/paperfigs binary and the
// repository's bench_test.go both drive these entry points.
//
// All sweeps here run on the bus fast-forward engine automatically: the
// generators are traffic.Scheduler implementations and no per-cycle
// hook is attached (the two exceptions — the Fig. 5 alignment study and
// the adaptation experiment — observe every cycle via OnOwner/OnCycle
// and therefore run the naive loop). The engine is bit-identical to the
// naive loop, so the reproduced numbers are unchanged; the paper's
// sparse traffic classes (T3, T6, T9, the low-load latency surface
// corners) are where it pays, skipping the dead cycles between
// arrivals.
package expt

import (
	"fmt"

	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/cache"
	"lotterybus/internal/core"
	"lotterybus/internal/prng"
	"lotterybus/internal/runner"
	"lotterybus/internal/stats"
	"lotterybus/internal/traffic"
)

// Options controls simulation length, seeding and parallelism for all
// experiments.
type Options struct {
	// Cycles is the simulated bus cycles per measurement point; zero
	// selects 200000.
	Cycles int64
	// Seed drives every stochastic element; zero selects 42.
	Seed uint64
	// Parallel is the worker count for sweep-shaped experiments. Each
	// sweep point derives its own PRNG streams, so results are
	// bit-identical for every worker count. Zero consults the
	// LOTTERYBUS_PARALLEL environment variable and then GOMAXPROCS;
	// 1 forces a serial run.
	Parallel int
	// Lanes runs the experiments that support it (currently RunRegimes)
	// on the lane-batched engine instead of the scalar engine. Results
	// are bit-identical; the flag exists for A/B validation.
	Lanes bool
	// NoAnalytic disables the analytic short-circuit: every sweep point
	// simulates, even ones the regime classifier proves in closed form,
	// and the simulated/analytic share error is recorded instead.
	NoAnalytic bool
	// Cache, when non-nil, is the content-addressed result cache the
	// sweep experiments resolve their points through: a point whose
	// (descriptor, cycles, seed) key is already stored replays from its
	// snapshot instead of simulating, and concurrent workers landing on
	// one key share a single simulation (singleflight). nil disables
	// caching with no behavioural difference — cached and uncached runs
	// are bit-identical.
	Cache *cache.Cache
}

func (o Options) fill() Options {
	if o.Cycles == 0 {
		o.Cycles = 200000
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Filled returns the options with defaults applied — the values the
// experiments actually run with. Run journals record these effective
// values rather than the zero sentinels, so a journal line is complete
// seed provenance on its own.
func (o Options) Filled() Options { return o.fill() }

// workers resolves the sweep worker count.
func (o Options) workers() int { return runner.Workers(o.Parallel) }

// fourMasters is the paper's canonical test system (Fig. 3): four
// masters contending for a shared memory.
const fourMasters = 4

// busyLoad is the per-master offered load (words/cycle) used by the
// bandwidth-sharing experiments, chosen so "the bus was always kept
// busy, i.e., at least one pending request exists at any time" while no
// single master saturates it alone (aggregate 2.88 words/cycle).
const busyLoad = 0.72

// busyMsgWords is the message size for the bandwidth-sharing workload.
const busyMsgWords = 16

// busyGenerator builds master i's heavy Bernoulli generator for the
// bandwidth-sharing workload, its stream derived from the tag.
func busyGenerator(o Options, tag string, i int) (*traffic.Bernoulli, error) {
	return traffic.NewBernoulli(busyLoad, traffic.Fixed(busyMsgWords), 0,
		prng.Derive(o.Seed, fmt.Sprintf("%s/gen/%d", tag, i)))
}

// newBusyBus builds the Fig. 3 system: four masters with heavy Bernoulli
// traffic into one shared memory, arbiter attached by the caller.
// Tickets are set per master for lottery arbiters.
func newBusyBus(o Options, tickets []uint64, tag string) (*bus.Bus, error) {
	b := bus.New(bus.Config{MaxBurst: 16})
	for i := 0; i < fourMasters; i++ {
		var tk uint64
		if tickets != nil {
			tk = tickets[i]
		}
		gen, err := busyGenerator(o, tag, i)
		if err != nil {
			return nil, err
		}
		b.AddMaster(fmt.Sprintf("C%d", i+1), gen, bus.MasterOpts{Tickets: tk})
	}
	b.AddSlave("shared-memory", bus.SlaveOpts{})
	return b, nil
}

// newClassBus builds a four-master system driven by one traffic class,
// with per-master tickets for lottery arbiters.
func newClassBus(o Options, class traffic.Class, tickets []uint64, tag string) (*bus.Bus, error) {
	b := bus.New(bus.Config{MaxBurst: 16})
	for i := 0; i < fourMasters; i++ {
		var tk uint64
		if tickets != nil {
			tk = tickets[i]
		}
		gen, err := class.Generator(i, 0, prng.Derive(o.Seed, tag))
		if err != nil {
			return nil, err
		}
		b.AddMaster(fmt.Sprintf("C%d", i+1), gen, bus.MasterOpts{Tickets: tk})
	}
	b.AddSlave("shared-memory", bus.SlaveOpts{})
	return b, nil
}

// lotteryArbiter builds a static lottery arbiter over the given tickets
// with the exact slack policy (the behavioural reference).
func lotteryArbiter(o Options, tickets []uint64, tag string) (bus.Arbiter, error) {
	mgr, err := core.NewStaticLottery(core.StaticConfig{
		Tickets: tickets,
		Source:  prng.NewXorShift64Star(prng.Derive(o.Seed, tag+"/lottery")),
	})
	if err != nil {
		return nil, err
	}
	return arb.NewStaticLottery(mgr), nil
}

// tdmaArbiter builds a two-level TDMA arbiter with contiguous
// reservation blocks of blockScale slots per weight unit.
func tdmaArbiter(weights []uint64, blockScale int) (bus.Arbiter, error) {
	slots := make([]int, len(weights))
	for i, w := range weights {
		slots[i] = int(w) * blockScale
	}
	return arb.NewTDMA(arb.ContiguousWheel(slots), len(weights), true)
}

// pointKey derives the cache key for one sweep point. tag must name
// the point unambiguously within the experiment namespace — the
// architecture, the experiment, and every swept parameter — because
// together with the run length and seed it is the entire content
// address.
func (o Options) pointKey(tag string) cache.Key {
	desc := fmt.Sprintf("lotterybus/expt/v1|%s|cycles=%d", tag, o.Cycles)
	return cache.KeyOf([]byte(desc), o.Seed, "expt")
}

// runPoint resolves one sweep point through the options' result cache.
// On a miss (or with no cache) build constructs the fully configured
// bus, which is simulated for o.Cycles and snapshotted; on a hit the
// simulation is skipped and the stored collector — verified against
// its embedded fingerprint and checksum — is returned.
func runPoint(o Options, tag string, build func() (*bus.Bus, error)) (*stats.Collector, error) {
	col, _, err := o.Cache.GetOrCompute(o.pointKey(tag), func() (*stats.Collector, error) {
		b, err := build()
		if err != nil {
			return nil, err
		}
		if err := b.Run(o.Cycles); err != nil {
			return nil, err
		}
		return b.Collector(), nil
	})
	return col, err
}

// bandwidths returns per-master bandwidth fractions after a run.
func bandwidths(col *stats.Collector) []float64 {
	out := make([]float64, col.N())
	for i := range out {
		out[i] = col.BandwidthFraction(i)
	}
	return out
}

// latencies returns per-master per-word latencies after a run.
func latencies(col *stats.Collector) []float64 {
	out := make([]float64, col.N())
	for i := range out {
		out[i] = col.PerWordLatency(i)
	}
	return out
}

// Detail is one master's distributional latency summary after a run:
// the per-word latency percentiles behind the mean the paper plots,
// plus the worst arrival-to-first-grant wait. The latency experiments
// carry a Detail per (point, master) so tables and CSV can distinguish
// "low and stable" from "merely low on average".
type Detail struct {
	Dist stats.Dist
	// MaxWait is the longest arrival-to-first-grant wait of any started
	// message, in cycles — collected on every run, no starvation
	// detector required.
	MaxWait int64
}

// details returns per-master latency distribution summaries after a run.
func details(col *stats.Collector) []Detail {
	out := make([]Detail, col.N())
	for i := range out {
		out[i] = Detail{Dist: col.LatencyDist(i), MaxWait: col.MaxStartWait(i)}
	}
	return out
}

// cell formats one distribution value for a detail table ("-" when the
// master completed no messages).
func cell(v float64) string {
	if v != v { // NaN
		return "-"
	}
	return fmt.Sprintf("%.2f", v)
}
