// Fast-forward engine: event-driven execution of the cycle-accurate bus
// model. The naive loop in bus.go executes every simulated cycle even
// when nothing decision-relevant can happen — idle gaps waiting for the
// next traffic arrival, split-transaction latency, slave wait states,
// and the interior of uninterrupted bursts. This file leaps over those
// provably-inert stretches in O(1) per event while reproducing the naive
// loop's observable state bit for bit:
//
//   - every cycle on which an arbiter could be consulted (bus idle with a
//     non-empty request map) is still executed individually, so arbiter
//     PRNG streams and internal state (round-robin pointers, TDMA wheel
//     reclamation, WRR deficits) advance identically;
//   - every traffic arrival is enqueued at its exact cycle, so queue
//     occupancy, drops and message arrival timestamps are identical;
//   - batched word transfers update the stats.Collector with the same
//     totals, and message start/completion events fire at the same cycles
//     with the same arguments, so latency sums and histograms are
//     identical (including the order-sensitive floating-point Welford
//     accumulators).
//
// Eligibility (checked per Run call by fastForwardable): no OnCycle /
// OnOwner / OnMessageComplete hook, no active Preemptor, and every
// attached generator implements Scheduler. Anything else falls back to
// the naive loop — correctness never depends on the fast path.
package bus

import (
	"math"

	"lotterybus/internal/stats"
)

// Scheduler mirrors traffic.Scheduler (as Generator mirrors the Tick
// contract): an optional generator extension that predicts arrival
// cycles, letting the bus skip cycles on which no message can arrive.
// NextArrival(cycle) returns the earliest cycle >= cycle at which the
// generator's Tick may emit, or math.MaxInt64 for "never"; SkipTo(cycle)
// notifies the generator that the intermediate cycles were skipped.
type Scheduler interface {
	NextArrival(cycle int64) int64
	SkipTo(cycle int64)
}

// never is the no-arrival sentinel (matches traffic.Never).
const never = int64(math.MaxInt64)

// fastForwardable reports whether this Run may use the fast-forward
// engine: nothing observes individual cycles and every generator can
// predict its arrivals.
func (b *Bus) fastForwardable() bool {
	if b.OnCycle != nil || b.OnOwner != nil || b.OnMessageComplete != nil {
		return false
	}
	if b.cfg.Preemption {
		if _, ok := b.arb.(Preemptor); ok {
			return false
		}
	}
	// An armed fault model, the watchdog and the starvation detector all
	// observe (or perturb) individual cycles; disarmed/absent they leave
	// the fast path untouched.
	if b.fault != nil && b.fault.Armed() {
		return false
	}
	if b.cfg.SplitTimeout > 0 || b.cfg.StarvationThreshold > 0 {
		return false
	}
	for _, m := range b.masters {
		if m.gen == nil {
			continue
		}
		if _, ok := m.gen.(Scheduler); !ok {
			return false
		}
	}
	return true
}

// schedulers returns the cached per-master Scheduler views (nil entries
// for generator-less masters, which never produce arrivals).
func (b *Bus) schedulers() []Scheduler {
	if len(b.scheds) != len(b.masters) {
		b.scheds = make([]Scheduler, len(b.masters))
		for i, m := range b.masters {
			if m.gen != nil {
				b.scheds[i], _ = m.gen.(Scheduler)
			}
		}
	}
	return b.scheds
}

// nextArrival returns the earliest cycle >= b.cycle at which any
// generator may emit a message.
func (b *Bus) nextArrival(scheds []Scheduler) int64 {
	next := never
	for _, s := range scheds {
		if s == nil {
			continue
		}
		if na := s.NextArrival(b.cycle); na < next {
			next = na
		}
	}
	return next
}

// nextSplitReady returns the earliest cycle at which an outstanding
// split transaction's response becomes ready (asserting its master's
// request line), or never.
func (b *Bus) nextSplitReady() int64 {
	next := never
	for _, m := range b.masters {
		if m.outstanding != nil && m.respReady < next {
			next = m.respReady
		}
	}
	return next
}

// runFast executes n bus cycles with event-driven fast-forwarding. The
// per-cycle portion below is the naive loop body minus the hook and
// pre-emption branches (both excluded by fastForwardable); after each
// executed cycle it leaps to the next event.
func (b *Bus) runFast(n int64, col *stats.Collector) error {
	scheds := b.schedulers()
	wide := len(b.masters) > 64
	end := b.cycle + n
	for b.cycle < end {
		cycle := b.cycle

		// Phase 1: traffic arrival. Tick is a no-op (and draws no PRNG)
		// for an event-driven generator off its arrival cycle, so
		// ticking every master keeps streams identical to the naive
		// loop, which also calls Tick every executed cycle.
		for _, m := range b.masters {
			if m.gen == nil {
				continue
			}
			m.gen.Tick(cycle, m.queue.len(), m.emit)
		}

		// Phase 2: arbitration when idle.
		if b.cur == nil {
			if !wide {
				if w := b.requestMask64(); w != 0 {
					// Narrow buses never set mask words 1..3, so storing
					// word 0 alone keeps the cache current without
					// copying the whole bitset.
					b.mask[0], b.maskFor = w, cycle
					if g, ok := b.arb.Arbitrate(cycle, &b.reqView); ok {
						if err := b.startBurst(g, col); err != nil {
							return err
						}
					}
				}
			} else if mask := b.requestMaskWide(); mask.Any() {
				b.mask, b.maskFor = mask, cycle
				if g, ok := b.arb.Arbitrate(cycle, &b.reqView); ok {
					if err := b.startBurst(g, col); err != nil {
						return err
					}
				}
			}
		}

		// Phase 3: word transfer.
		if b.cur != nil {
			if b.cur.waitLeft > 0 {
				b.cur.waitLeft--
			} else {
				b.transferWord(col)
			}
		}
		col.AdvanceCycles(1)
		b.cycle++

		// Fast-forward to the next event.
		if b.cur != nil {
			// Mid-burst: only a traffic arrival needs an executed cycle
			// before the burst's own bookkeeping; batch up to it.
			if limit := min(end, b.nextArrival(scheds)); limit > b.cycle {
				from := b.cycle
				b.batchBurst(limit, col)
				b.ffCycles += b.cycle - from
			}
		} else if !wide && b.requestMask64() == 0 || wide && b.requestMaskWide().None() {
			// Dead gap: bus idle, no requests. Nothing can happen until
			// the next arrival or a split response becomes ready.
			target := min(end, min(b.nextArrival(scheds), b.nextSplitReady()))
			if target > b.cycle {
				col.AdvanceCycles(target - b.cycle)
				b.ffCycles += target - b.cycle
				for _, s := range scheds {
					if s != nil {
						s.SkipTo(target)
					}
				}
				b.cycle = target
			}
		}
	}
	return nil
}

// batchBurst advances the in-progress burst to limit (exclusive) in one
// step, replaying exactly what the naive loop's phase 3 would do cycle
// by cycle. Preconditions: b.cur != nil, b.cycle < limit, and no traffic
// arrives in [b.cycle, limit).
func (b *Bus) batchBurst(limit int64, col *stats.Collector) {
	cur := b.cur
	m := b.masters[cur.master]
	var msg *message
	if cur.fromOutstanding {
		msg = m.outstanding
	} else {
		msg = m.queue.front()
	}
	start := b.cycle

	// The window may be pure stall (arbitration latency / wait states).
	if int64(cur.waitLeft) >= limit-start {
		cur.waitLeft -= int(limit - start)
		col.AdvanceCycles(limit - start)
		b.cycle = limit
		return
	}
	first := start + int64(cur.waitLeft) // cycle the next beat moves
	cur.waitLeft = 0

	if !msg.started {
		msg.started = true
		col.MessageStarted(cur.master, msg.arrival, first)
	}

	// Split request phase: a single address beat at first, then the bus
	// is released while the slave processes.
	if cur.control {
		col.ControlCycle(cur.master)
		m.outBuf = *msg
		m.outstanding = &m.outBuf
		m.respReady = first + int64(b.slaves[msg.slave].splitLatency)
		m.queue.pop()
		b.cur = nil
		col.AdvanceCycles(first + 1 - start)
		b.cycle = first + 1
		return
	}

	// Data beats move every (1 + waitStates) cycles starting at first.
	waitStates := 0
	if len(b.slaves) > 0 {
		waitStates = b.slaves[msg.slave].waitStates
	}
	stride := int64(waitStates) + 1
	left := int64(cur.words - cur.done)
	if int64(msg.remaining) < left {
		left = int64(msg.remaining)
	}
	k := (limit - first + stride - 1) / stride // beats before limit
	if k > left {
		k = left
	}
	// k >= 1: first < limit and left >= 1 for any live burst.
	col.WordsTransferred(cur.master, k)
	if len(b.slaves) > 0 {
		b.slaves[msg.slave].words += k
	}
	msg.remaining -= int(k)
	cur.done += int(k)
	last := first + (k-1)*stride // cycle of the batch's final beat

	if msg.remaining == 0 {
		col.MessageCompleted(cur.master, msg.words, msg.arrival, last)
		if cur.fromOutstanding {
			m.outstanding = nil
		} else {
			m.queue.pop()
		}
		b.cur = nil
		col.AdvanceCycles(last + 1 - start)
		b.cycle = last + 1
		return
	}
	if cur.done == cur.words {
		// Burst budget exhausted mid-message: the master re-contends.
		b.cur = nil
		col.AdvanceCycles(last + 1 - start)
		b.cycle = last + 1
		return
	}
	// Burst continues beyond limit. The naive loop would have set
	// waitLeft to the slave's wait states after the beat at last and
	// decremented it once per cycle since; limit <= last + stride
	// guarantees the remainder is non-negative.
	cur.waitLeft = waitStates - int(limit-last-1)
	col.AdvanceCycles(limit - start)
	b.cycle = limit
}
