package check

import (
	"fmt"

	"lotterybus/internal/topology"
)

// Multi-segment auditing: a hierarchical fabric is consistent exactly
// when every segment passes the single-bus audit on its own ledger and
// every bridge's word ledger balances — words entering a bridge from
// its source segment equal the words injected into the destination
// segment plus those still waiting in (or shed by) the bridge FIFO.

// AuditSystem audits every segment and bridge of a multi-bus fabric.
// Each segment's violations are prefixed with its registered name; the
// returned slice is empty when the whole fabric is consistent.
func AuditSystem(sys *topology.System) []Violation {
	return AuditSystemWith(sys, nil)
}

// AuditSystemWith is AuditSystem with per-segment audit options; opts
// maps a segment index to the Opts passed to its AuditWith call
// (segments absent from the map audit with defaults). A nil map audits
// every segment with defaults.
func AuditSystemWith(sys *topology.System, opts map[int]Opts) []Violation {
	var all []Violation
	for i := 0; i < sys.NumBuses(); i++ {
		for _, v := range AuditWith(sys.Bus(i), opts[i]) {
			v.Detail = fmt.Sprintf("segment %s: %s", sys.BusName(i), v.Detail)
			all = append(all, v)
		}
	}
	for _, br := range sys.Bridges() {
		if err := br.CheckConservation(); err != nil {
			all = append(all, Violation{
				Kind:   "bridge-word-conservation",
				Master: -1,
				Detail: err.Error(),
			})
		}
	}
	return all
}

// AuditCrossbar audits every output port of a partial crossbar — each
// port is an independent arbitration domain with its own ledger, so
// the single-bus invariants must hold per port.
func AuditCrossbar(x *topology.Crossbar) []Violation {
	return AuditSystem(x.System())
}
