package check

import "testing"

// TestTicketScaling proves static-lottery scaling invariance: ×3 the
// holdings, bit-identical run.
func TestTicketScaling(t *testing.T) {
	if err := TicketScaling(20000, 3); err != nil {
		t.Fatal(err)
	}
}

// TestTicketScalingRejectsDegenerateFactor proves factors below 2 are
// refused (k=1 would vacuously pass).
func TestTicketScalingRejectsDegenerateFactor(t *testing.T) {
	if err := TicketScaling(1000, 1); err == nil {
		t.Fatal("scaling factor 1 accepted")
	}
}

// TestScalingTicketsAvoidPowerOfTwoTotals pins the property the base
// vector was chosen for: every live-subset total must keep lottery draws
// off prng.Uintn's power-of-two mask path, which is not scale-invariant.
func TestScalingTicketsAvoidPowerOfTwoTotals(t *testing.T) {
	for mask := 1; mask < 1<<len(ScalingTickets); mask++ {
		var tot uint64
		for i, tk := range ScalingTickets {
			if mask>>i&1 == 1 {
				tot += tk
			}
		}
		if tot&(tot-1) == 0 {
			t.Errorf("subset %#x total %d is a power of two", mask, tot)
		}
	}
}

// TestRelabeling proves share-follows-ticket across all 24 relabelings
// of the holdings {1,2,3,4}.
func TestRelabeling(t *testing.T) {
	vs, err := Relabeling(50000, 0.05, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Error(v)
	}
}
