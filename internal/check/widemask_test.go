package check

import (
	"testing"

	"lotterybus/internal/analytic"
	"lotterybus/internal/arb"
	"lotterybus/internal/bus"
	"lotterybus/internal/core"
	"lotterybus/internal/prng"
)

// TestOracleTDMAAtMaskBoundary runs the saturation-oracle audit at the
// exactly-64-master mask boundary the old 1<<n-1 idiom sat on: a
// saturated 64-master TDMA bus must split bandwidth uniformly per the
// closed form evaluated with the saturating full mask.
func TestOracleTDMAAtMaskBoundary(t *testing.T) {
	const n = 64
	tickets := make([]uint64, n)
	slots := make([]int, n)
	for i := range tickets {
		tickets[i], slots[i] = 1, 1
	}
	b, err := saturatedBus(tickets, func() (bus.Arbiter, error) {
		return arb.NewTDMA(arb.ContiguousWheel(slots), n, false)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(64 * 1024); err != nil {
		t.Fatal(err)
	}
	expected := make([]float64, n)
	for i := range expected {
		s, err := analytic.TDMAServiceShareSet(slots, i, core.FullBitset(n))
		if err != nil {
			t.Fatal(err)
		}
		expected[i] = s
	}
	for _, v := range AuditWith(b, Opts{ExpectedShares: expected, ShareTol: 0.005}) {
		t.Errorf("violation: %s: %s", v.Kind, v.Detail)
	}
}

// TestOracleLotteryBeyondMaskBoundary pushes the same audit past the
// word boundary: a saturated 96-master static lottery, unrepresentable
// in any uint64 request map, must still satisfy every bus invariant and
// track its ticket-ratio shares.
func TestOracleLotteryBeyondMaskBoundary(t *testing.T) {
	const n = 96
	tickets := make([]uint64, n)
	for i := range tickets {
		tickets[i] = uint64(i%4 + 1)
	}
	b, err := saturatedBus(tickets, func() (bus.Arbiter, error) {
		mgr, err := core.NewStaticLottery(core.StaticConfig{
			Tickets: tickets,
			Source:  prng.NewXorShift64Star(42),
		})
		if err != nil {
			return nil, err
		}
		return arb.NewStaticLottery(mgr), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Run(200000); err != nil {
		t.Fatal(err)
	}
	expected := make([]float64, n)
	for i := range expected {
		expected[i] = analytic.LotteryShare(tickets, i)
	}
	for _, v := range AuditWith(b, Opts{ExpectedShares: expected, ShareTol: 0.01}) {
		t.Errorf("violation: %s: %s", v.Kind, v.Detail)
	}
	col := b.Collector()
	if util := float64(col.BusyCycles()) / float64(col.Cycles()); util < 0.95 {
		t.Errorf("bus only %.2f%% busy under saturating traffic", 100*util)
	}
}
