// Package core implements the LOTTERYBUS arbitration algorithm — the
// central contribution of Lahiri, Raghunathan and Lakshminarayana,
// "LOTTERYBUS: A New High-Performance Communication Architecture for
// System-on-Chip Designs", DAC 2001.
//
// A lottery manager holds, for each bus master C_1..C_n, a number of
// lottery tickets t_1..t_n. Given the set of currently pending requests
// r_1..r_n (boolean), an arbitration draws a uniformly random "winning
// ticket" in [0, Σ r_j·t_j) and grants the bus to the master whose ticket
// range contains it: the probability of granting C_i is
//
//	P(C_i) = r_i·t_i / Σ_j r_j·t_j .
//
// Two managers are provided, mirroring the paper's two architectures:
//
//   - StaticLottery (§4.3): ticket holdings are fixed at construction.
//     All 2^n partial-sum ranges are precomputed into a lookup table and
//     the ticket holdings are scaled so the grand total is a power of
//     two, enabling an LFSR-based random number generator.
//
//   - DynamicLottery (§4.4): ticket holdings are inputs to every draw.
//     Partial sums are formed on the fly (bitwise-AND plus adder tree in
//     hardware) and the random number is reduced into the live range
//     with modulo arithmetic.
//
// The package is independent of the bus model: it can arbitrate anything
// (package arb adapts it to the bus simulator, and it is equally usable
// as a proportional-share scheduler in the style of Waldspurger-Weihl
// lottery scheduling, the paper's reference [16]).
package core

import (
	"fmt"
	"math"

	"lotterybus/internal/prng"
)

// lutMaxMasters bounds the request-map lookup table (2^n entries of n
// partial sums each). Beyond this the static manager computes ranges on
// demand, which is behaviourally identical.
const lutMaxMasters = 12

// SlackPolicy selects how a lottery manager maps a raw random word onto
// the live ticket range [0, Σ r_j·t_j), whose size varies with the
// requesting subset and is generally not a power of two.
type SlackPolicy int

const (
	// PolicyExact draws an exactly uniform value in [0, total) using
	// unbiased rejection sampling on the random source, over the
	// original (unscaled) ticket holdings. This is the behavioural
	// reference (default): grant probabilities equal the configured
	// ticket ratios exactly, with no power-of-two scaling distortion.
	PolicyExact SlackPolicy = iota

	// PolicyModulo reduces a 32-bit random word modulo the live total of
	// the original (unscaled) holdings, exactly as the dynamic lottery
	// manager's modulo hardware does (paper Fig. 10). It carries the
	// usual modulo bias of at most total/2^32; totals at or above 2^24
	// fall back to exact sampling so the bias can never exceed 2^-8.
	PolicyModulo

	// PolicyRedraw compares the raw word against the partial sums and
	// issues no grant when the word falls above the live total; the
	// manager retries on the next arbitration. This matches a static
	// manager built from only a LUT, comparators and a priority selector
	// (paper Fig. 9) with no modulo stage. Proportionality among
	// requesters is exact; the cost is an occasional idle cycle.
	PolicyRedraw

	// PolicyAbsorbLast assigns the slack above the live total to the
	// highest-indexed requester (its comparator threshold is lifted to
	// the full RNG range). No cycles are lost but the last requester is
	// favoured by up to slack/2^width.
	PolicyAbsorbLast
)

// String returns the policy name.
func (p SlackPolicy) String() string {
	switch p {
	case PolicyExact:
		return "exact"
	case PolicyModulo:
		return "modulo"
	case PolicyRedraw:
		return "redraw"
	case PolicyAbsorbLast:
		return "absorb-last"
	default:
		return fmt.Sprintf("SlackPolicy(%d)", int(p))
	}
}

// NoWinner is returned by Draw when no grant is issued: either no
// requests are pending, or a PolicyRedraw draw fell into the slack zone.
const NoWinner = -1

// StaticLottery is the statically-configured lottery manager. Ticket
// holdings are fixed; the ranges of every request subset are precomputed.
type StaticLottery struct {
	orig   []uint64 // holdings as configured
	scaled []uint64 // holdings scaled so the grand total is 1<<width
	width  uint     // RNG word width; 1<<width == Σ scaled
	policy SlackPolicy
	src    prng.Source

	n int
	// Two lookup tables are kept: the scaled table mirrors the hardware
	// LUT (paper Fig. 9) and serves the hardware-style policies; the
	// original-holdings table serves PolicyExact, which by definition is
	// free of scaling distortion.
	scaledLUT rangeLUT
	origLUT   rangeLUT

	draws   uint64
	redraws uint64
}

// rangeLUT caches, per request mask, the running partial sums
// Σ_{j<=i} r_j·t_j and the live total.
type rangeLUT struct {
	holdings []uint64
	totals   []uint64   // nil when beyond lutMaxMasters
	psums    [][]uint64 // nil when beyond lutMaxMasters
	scratch  []uint64
}

func newRangeLUT(holdings []uint64, buildTable bool) rangeLUT {
	n := len(holdings)
	l := rangeLUT{holdings: holdings, scratch: make([]uint64, n)}
	if !buildTable {
		return l
	}
	size := 1 << n
	l.totals = make([]uint64, size)
	l.psums = make([][]uint64, size)
	flat := make([]uint64, size*n)
	for mask := 0; mask < size; mask++ {
		ps := flat[mask*n : (mask+1)*n]
		var acc uint64
		for i := 0; i < n; i++ {
			if mask>>uint(i)&1 == 1 {
				acc += holdings[i]
			}
			ps[i] = acc
		}
		l.totals[mask] = acc
		l.psums[mask] = ps
	}
	return l
}

// live returns the partial sums and total for mask. The returned slice is
// shared; callers must not retain it across draws.
func (l *rangeLUT) live(mask uint64) ([]uint64, uint64) {
	if l.psums != nil && mask < uint64(len(l.psums)) {
		return l.psums[mask], l.totals[mask]
	}
	var acc uint64
	for i := range l.holdings {
		if mask>>uint(i)&1 == 1 {
			acc += l.holdings[i]
		}
		l.scratch[i] = acc
	}
	return l.scratch, acc
}

// liveSet is live for a wide request map (more than 64 masters, beyond
// any LUT). The returned slice is shared; callers must not retain it
// across draws.
func (l *rangeLUT) liveSet(set Bitset) ([]uint64, uint64) {
	var acc uint64
	for i := range l.holdings {
		if set.Test(i) {
			acc += l.holdings[i]
		}
		l.scratch[i] = acc
	}
	return l.scratch, acc
}

// StaticConfig parameterizes NewStaticLottery.
type StaticConfig struct {
	// Tickets holds one positive ticket count per master.
	Tickets []uint64
	// Source supplies random words. Required.
	Source prng.Source
	// Policy selects the slack policy; default PolicyExact.
	Policy SlackPolicy
	// Width, if nonzero, fixes the RNG width (ticket holdings are scaled
	// so they sum to exactly 1<<Width). If zero, the smallest width with
	// 1<<width >= ceil(1.5 * total) is used, bounding the per-master
	// rounding distortion while keeping the redraw slack small.
	Width uint
}

// NewStaticLottery builds a static lottery manager.
func NewStaticLottery(cfg StaticConfig) (*StaticLottery, error) {
	n := len(cfg.Tickets)
	if n == 0 {
		return nil, fmt.Errorf("core: no masters")
	}
	if n > MaxMasters {
		return nil, fmt.Errorf("core: %d masters exceeds core.MaxMasters (%d)", n, MaxMasters)
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	var total uint64
	for i, t := range cfg.Tickets {
		if t == 0 {
			return nil, fmt.Errorf("core: master %d has zero tickets", i)
		}
		total += t
	}
	width := cfg.Width
	if width == 0 {
		width = AutoWidth(total)
	}
	if width > 32 {
		return nil, fmt.Errorf("core: RNG width %d exceeds 32", width)
	}
	scaled, err := ScaleTickets(cfg.Tickets, width)
	if err != nil {
		return nil, err
	}
	orig := append([]uint64(nil), cfg.Tickets...)
	l := &StaticLottery{
		orig:      orig,
		scaled:    scaled,
		width:     width,
		policy:    cfg.Policy,
		src:       cfg.Source,
		n:         n,
		scaledLUT: newRangeLUT(scaled, n <= lutMaxMasters),
		origLUT:   newRangeLUT(orig, n <= lutMaxMasters),
	}
	return l, nil
}

// N returns the number of masters.
func (l *StaticLottery) N() int { return l.n }

// Width returns the RNG word width in bits.
func (l *StaticLottery) Width() uint { return l.width }

// Policy returns the configured slack policy.
func (l *StaticLottery) Policy() SlackPolicy { return l.policy }

// Tickets returns the configured (unscaled) holdings.
func (l *StaticLottery) Tickets() []uint64 {
	return append([]uint64(nil), l.orig...)
}

// ScaledTickets returns the power-of-two-scaled holdings used for draws.
func (l *StaticLottery) ScaledTickets() []uint64 {
	return append([]uint64(nil), l.scaled...)
}

// RangeTable returns the partial sums Σ_{j<=i} r_j·t_j for the given
// request mask, using the scaled holdings. This is the row the hardware
// lookup table stores for that request map.
func (l *StaticLottery) RangeTable(mask uint64) []uint64 {
	ps, _ := l.scaledLUT.live(mask)
	return append([]uint64(nil), ps...)
}

// Draws reports how many draws have been performed (including redraws).
func (l *StaticLottery) Draws() uint64 { return l.draws }

// Redraws reports how many PolicyRedraw draws fell into the slack zone.
func (l *StaticLottery) Redraws() uint64 { return l.redraws }

// Draw runs one lottery over the masters in mask (bit i set means master
// i has a pending request). It returns the granted master index, or
// NoWinner if mask is empty or a PolicyRedraw draw hit the slack zone.
func (l *StaticLottery) Draw(mask uint64) int {
	mask &= (uint64(1) << uint(l.n)) - 1
	if mask == 0 {
		return NoWinner
	}
	l.draws++
	var ps []uint64
	var total, r uint64
	switch l.policy {
	case PolicyModulo:
		ps, total = l.origLUT.live(mask)
		if total >= 1<<24 {
			r = prng.Uintn(l.src, total)
		} else {
			r = (l.src.Uint64() & (1<<32 - 1)) % total
		}
	case PolicyRedraw:
		ps, total = l.scaledLUT.live(mask)
		r = l.word()
		if r >= total {
			l.redraws++
			return NoWinner
		}
	case PolicyAbsorbLast:
		ps, total = l.scaledLUT.live(mask)
		r = l.word()
		if r >= total {
			return highestBit(mask)
		}
	default: // PolicyExact
		ps, total = l.origLUT.live(mask)
		r = prng.Uintn(l.src, total)
	}
	return selectWinner(ps, r)
}

// DrawSet runs one lottery over the masters in set — the wide-fabric
// entry point. For managers of at most 64 masters it reduces to
// Draw(set.Mask64()): same PRNG consumption, same winner, so existing
// fingerprints are untouched and the hot loop stays word-wide. Beyond
// 64 masters the partial sums are scanned over the full set.
func (l *StaticLottery) DrawSet(set Bitset) int {
	if l.n <= 64 {
		return l.Draw(set.Mask64())
	}
	set.Trim(l.n)
	if set.None() {
		return NoWinner
	}
	l.draws++
	var ps []uint64
	var total, r uint64
	switch l.policy {
	case PolicyModulo:
		ps, total = l.origLUT.liveSet(set)
		if total >= 1<<24 {
			r = prng.Uintn(l.src, total)
		} else {
			r = (l.src.Uint64() & (1<<32 - 1)) % total
		}
	case PolicyRedraw:
		ps, total = l.scaledLUT.liveSet(set)
		r = l.word()
		if r >= total {
			l.redraws++
			return NoWinner
		}
	case PolicyAbsorbLast:
		ps, total = l.scaledLUT.liveSet(set)
		r = l.word()
		if r >= total {
			return set.HighestSet()
		}
	default: // PolicyExact
		ps, total = l.origLUT.liveSet(set)
		r = prng.Uintn(l.src, total)
	}
	return selectWinner(ps, r)
}

// word draws one RNG word in [0, 1<<width).
func (l *StaticLottery) word() uint64 {
	return l.src.Uint64() & (uint64(1)<<l.width - 1)
}

// selectWinner returns the first index whose partial sum exceeds r — the
// comparator bank plus priority selector of the hardware implementation.
// Non-requesters can never win: their partial sum equals their
// predecessor's, so the priority selector always fires on the requester
// whose range actually contains r.
func selectWinner(psums []uint64, r uint64) int {
	for i, p := range psums {
		if r < p {
			return i
		}
	}
	return NoWinner
}

// highestBit returns the index of the most significant set bit of mask.
func highestBit(mask uint64) int {
	hi := NoWinner
	for i := 0; mask != 0; i++ {
		if mask&1 == 1 {
			hi = i
		}
		mask >>= 1
	}
	return hi
}

// DynamicLottery is the dynamically-configured lottery manager: ticket
// holdings are inputs to every draw, so any master (or a host processor)
// may re-provision bandwidth at run time.
type DynamicLottery struct {
	n      int
	width  uint
	policy SlackPolicy
	src    prng.Source
	psums  []uint64 // scratch

	draws   uint64
	redraws uint64
}

// DynamicConfig parameterizes NewDynamicLottery.
type DynamicConfig struct {
	// Masters is the number of contenders.
	Masters int
	// Source supplies random words. Required.
	Source prng.Source
	// Policy selects the slack policy; default PolicyExact. Use
	// PolicyModulo for the datapath the paper's dynamic manager
	// hardware implements.
	Policy SlackPolicy
	// Width is the RNG word width for the hardware-style policies
	// (Modulo/Redraw/AbsorbLast); default 16. Live totals must stay
	// below 1<<Width.
	Width uint
}

// NewDynamicLottery builds a dynamic lottery manager.
func NewDynamicLottery(cfg DynamicConfig) (*DynamicLottery, error) {
	if cfg.Masters <= 0 {
		return nil, fmt.Errorf("core: no masters")
	}
	if cfg.Masters > MaxMasters {
		return nil, fmt.Errorf("core: %d masters exceeds core.MaxMasters (%d)", cfg.Masters, MaxMasters)
	}
	if cfg.Source == nil {
		return nil, fmt.Errorf("core: nil random source")
	}
	width := cfg.Width
	if width == 0 {
		width = 16
	}
	if width > 32 {
		return nil, fmt.Errorf("core: RNG width %d exceeds 32", width)
	}
	return &DynamicLottery{
		n:      cfg.Masters,
		width:  width,
		policy: cfg.Policy,
		src:    cfg.Source,
		psums:  make([]uint64, cfg.Masters),
	}, nil
}

// N returns the number of masters.
func (l *DynamicLottery) N() int { return l.n }

// Width returns the RNG word width in bits.
func (l *DynamicLottery) Width() uint { return l.width }

// Policy returns the configured slack policy.
func (l *DynamicLottery) Policy() SlackPolicy { return l.policy }

// Draws reports how many draws have been performed (including redraws).
func (l *DynamicLottery) Draws() uint64 { return l.draws }

// Redraws reports how many PolicyRedraw draws fell into the slack zone.
func (l *DynamicLottery) Redraws() uint64 { return l.redraws }

// Draw runs one lottery over the masters in mask with the given live
// ticket holdings (tickets[i] is ignored unless bit i of mask is set).
// A requester with zero tickets can never win while any contender holds
// tickets; if all requesters hold zero tickets the draw degenerates to
// granting the lowest-indexed requester, so a misconfiguration cannot
// deadlock the bus. Returns the winner index or NoWinner.
func (l *DynamicLottery) Draw(mask uint64, tickets []uint64) int {
	if len(tickets) != l.n {
		panic(fmt.Sprintf("core: Draw with %d tickets for %d masters", len(tickets), l.n))
	}
	mask &= (uint64(1) << uint(l.n)) - 1
	if mask == 0 {
		return NoWinner
	}
	// Bitwise-AND stage plus adder tree (paper Fig. 10).
	var acc uint64
	for i := 0; i < l.n; i++ {
		if mask>>uint(i)&1 == 1 {
			acc += tickets[i]
		}
		l.psums[i] = acc
	}
	total := acc
	if total == 0 {
		return lowestBit(mask)
	}
	if total >= uint64(1)<<l.width && l.policy != PolicyExact {
		// The live total does not fit the RNG word; fall back to the
		// exact path rather than produce garbage grants.
		l.draws++
		return selectWinner(l.psums, prng.Uintn(l.src, total))
	}
	l.draws++
	var r uint64
	switch l.policy {
	case PolicyExact:
		r = prng.Uintn(l.src, total)
	case PolicyRedraw:
		r = l.word()
		if r >= total {
			l.redraws++
			return NoWinner
		}
	case PolicyAbsorbLast:
		r = l.word()
		if r >= total {
			return highestBit(mask)
		}
	default: // PolicyModulo — the paper's dynamic manager hardware.
		r = l.word() % total
	}
	return selectWinner(l.psums, r)
}

// DrawSet runs one lottery over the masters in set with the given live
// ticket holdings — the wide-fabric entry point. For managers of at
// most 64 masters it reduces to Draw(set.Mask64(), tickets): same PRNG
// consumption, same winner. Beyond 64 masters the adder tree runs over
// the full set.
func (l *DynamicLottery) DrawSet(set Bitset, tickets []uint64) int {
	if l.n <= 64 {
		return l.Draw(set.Mask64(), tickets)
	}
	if len(tickets) != l.n {
		panic(fmt.Sprintf("core: DrawSet with %d tickets for %d masters", len(tickets), l.n))
	}
	set.Trim(l.n)
	if set.None() {
		return NoWinner
	}
	var acc uint64
	for i := 0; i < l.n; i++ {
		if set.Test(i) {
			acc += tickets[i]
		}
		l.psums[i] = acc
	}
	total := acc
	if total == 0 {
		return set.LowestSet()
	}
	if total >= uint64(1)<<l.width && l.policy != PolicyExact {
		l.draws++
		return selectWinner(l.psums, prng.Uintn(l.src, total))
	}
	l.draws++
	var r uint64
	switch l.policy {
	case PolicyExact:
		r = prng.Uintn(l.src, total)
	case PolicyRedraw:
		r = l.word()
		if r >= total {
			l.redraws++
			return NoWinner
		}
	case PolicyAbsorbLast:
		r = l.word()
		if r >= total {
			return set.HighestSet()
		}
	default: // PolicyModulo — the paper's dynamic manager hardware.
		r = l.word() % total
	}
	return selectWinner(l.psums, r)
}

func (l *DynamicLottery) word() uint64 {
	return l.src.Uint64() & (uint64(1)<<l.width - 1)
}

// lowestBit returns the index of the least significant set bit of mask.
func lowestBit(mask uint64) int {
	for i := 0; i < 64; i++ {
		if mask>>uint(i)&1 == 1 {
			return i
		}
	}
	return NoWinner
}

// AccessProbability returns the probability that a master holding t of T
// total live tickets wins at least one of n consecutive lotteries:
// p = 1 - (1 - t/T)^n (paper §4.2). This is the paper's starvation
// argument: p converges to one geometrically, so no requester is starved.
func AccessProbability(t, total uint64, n int) float64 {
	if total == 0 || n <= 0 {
		return 0
	}
	if t >= total {
		return 1
	}
	q := 1 - float64(t)/float64(total)
	return 1 - math.Pow(q, float64(n))
}

// DrawsForConfidence returns the smallest number of lotteries n such that
// a master holding t of T tickets wins at least once with probability at
// least p. It returns 0 when t >= total (certain on the first draw) and
// -1 for degenerate inputs (t == 0, total == 0, or p >= 1).
func DrawsForConfidence(t, total uint64, p float64) int {
	if t == 0 || total == 0 || p >= 1 {
		return -1
	}
	if t >= total {
		return 1
	}
	if p <= 0 {
		return 1
	}
	q := 1 - float64(t)/float64(total)
	n := math.Log(1-p) / math.Log(q)
	return int(math.Ceil(n))
}
