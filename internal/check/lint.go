package check

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Nondeterminism lint: the whole verification layer rests on runs being
// bit-reproducible from a seed, so ambient entropy must stay quarantined.
// Lint parses every .go file under a tree (stdlib go/parser — no
// third-party analysis framework required) and flags:
//
//   - imports of math/rand or math/rand/v2 anywhere outside
//     internal/prng: all simulation randomness must flow through the
//     repo's seeded xorshift sources;
//   - calls to time.Now outside internal/obs: wall-clock time is an
//     observability concern (journal timestamps, progress meters) and
//     must never influence simulation state.
//
// The allowlists are path prefixes relative to the lint root.

// LintIssue is one nondeterminism finding.
type LintIssue struct {
	// Pos is the offending file position ("path:line:col", path relative
	// to the lint root).
	Pos string
	// Msg describes the finding.
	Msg string
}

func (i LintIssue) String() string { return i.Pos + ": " + i.Msg }

// forbiddenImports maps import paths to the directory (relative to the
// lint root, slash-separated) allowed to import them.
var forbiddenImports = map[string]string{
	"math/rand":    "internal/prng",
	"math/rand/v2": "internal/prng",
}

// timeNowAllowed is the one directory allowed to call time.Now.
const timeNowAllowed = "internal/obs"

// Lint walks root and returns every nondeterminism finding, sorted by
// position. Vendored trees, testdata and dot-directories are skipped.
func Lint(root string) ([]LintIssue, error) {
	var issues []LintIssue
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		found, err := lintFile(fset, path, rel)
		if err != nil {
			return err
		}
		issues = append(issues, found...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(issues, func(a, b int) bool { return issues[a].Pos < issues[b].Pos })
	return issues, nil
}

// inDir reports whether the slash-relative file path sits under dir.
func inDir(rel, dir string) bool {
	return strings.HasPrefix(rel, dir+"/")
}

// lintFile parses one file and applies both rules.
func lintFile(fset *token.FileSet, path, rel string) ([]LintIssue, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("check: lint %s: %w", rel, err)
	}
	var issues []LintIssue
	report := func(pos token.Pos, msg string) {
		p := fset.Position(pos)
		issues = append(issues, LintIssue{
			Pos: fmt.Sprintf("%s:%d:%d", rel, p.Line, p.Column),
			Msg: msg,
		})
	}

	// timeNames collects the local names the "time" package is imported
	// under in this file (usually just "time", but aliases count too).
	timeNames := map[string]bool{}
	for _, imp := range f.Imports {
		ipath, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		if allowed, bad := forbiddenImports[ipath]; bad && !inDir(rel, allowed) {
			report(imp.Pos(), fmt.Sprintf(
				"import %q: unseeded randomness outside %s breaks run reproducibility; use internal/prng", ipath, allowed))
		}
		if ipath == "time" {
			local := "time"
			if imp.Name != nil {
				local = imp.Name.Name
			}
			if local != "_" {
				timeNames[local] = true
			}
		}
	}
	if len(timeNames) == 0 || inDir(rel, timeNowAllowed) {
		return issues, nil
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Now" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && timeNames[id.Name] {
			report(sel.Pos(), fmt.Sprintf(
				"time.Now outside %s: wall-clock reads must not reach simulation code", timeNowAllowed))
		}
		return true
	})
	return issues, nil
}
