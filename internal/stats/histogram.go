package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a streaming histogram over float64 samples with
// exact mean/variance tracking (Welford) and approximate quantiles via
// fixed-resolution buckets. The zero value is not usable; call
// NewHistogram.
type Histogram struct {
	count int64
	mean  float64
	m2    float64
	min   float64
	max   float64
	// buckets holds counts for sample value v in bucket
	// floor(v * bucketsPerUnit); values beyond the range land in the
	// overflow bucket.
	buckets  map[int64]int64
	overflow int64
	// underflow counts negative samples. No latency metric on this
	// simulator can legitimately be negative, so a nonzero underflow is
	// an accounting bug upstream; counting such samples separately
	// (instead of folding them into bucket 0, which silently skewed
	// quantiles) keeps the evidence visible — the invariant auditor in
	// package check flags it.
	underflow int64
}

// bucketsPerUnit gives 0.25-cycle latency resolution, ample for
// cycles/word metrics.
const bucketsPerUnit = 4

// maxBucket bounds the bucket index; samples above land in overflow.
const maxBucket = 1 << 20

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		min:     math.Inf(1),
		max:     math.Inf(-1),
		buckets: make(map[int64]int64),
	}
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.count++
	d := v - h.mean
	h.mean += d / float64(h.count)
	h.m2 += d * (v - h.mean)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	if v < 0 {
		h.underflow++
		return
	}
	b := int64(v * bucketsPerUnit)
	if b >= maxBucket {
		h.overflow++
		return
	}
	h.buckets[b]++
}

// Count returns the number of samples recorded.
func (h *Histogram) Count() int64 { return h.count }

// Underflow returns how many negative samples were recorded. Nonzero
// underflow indicates a latency-accounting bug in whatever fed the
// histogram.
func (h *Histogram) Underflow() int64 { return h.underflow }

// Mean returns the sample mean, or NaN when empty.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.mean
}

// Variance returns the sample variance (n-1 denominator), or NaN with
// fewer than two samples.
func (h *Histogram) Variance() float64 {
	if h.count < 2 {
		return math.NaN()
	}
	return h.m2 / float64(h.count-1)
}

// StdDev returns the sample standard deviation.
func (h *Histogram) StdDev() float64 { return math.Sqrt(h.Variance()) }

// Min returns the smallest sample, or NaN when empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the largest sample, or NaN when empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.max
}

// Quantile returns an approximation of the q-quantile (0 <= q <= 1) at
// the histogram's bucket resolution, or NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	keys := make([]int64, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	target := int64(q * float64(h.count))
	if target >= h.count {
		target = h.count - 1
	}
	// Underflow samples sit below every bucket; counting them first
	// keeps quantiles consistent with Count when negatives were fed.
	acc := h.underflow
	if acc > target {
		return h.min
	}
	for _, k := range keys {
		acc += h.buckets[k]
		if acc > target {
			return (float64(k) + 0.5) / bucketsPerUnit
		}
	}
	return h.max
}

// EachBucket calls fn for every occupied bucket in ascending value
// order, passing the bucket's midpoint value and its sample count, and
// finally the overflow bucket (if occupied) at the histogram's range
// cap. It is the batched export path the observability registry uses to
// re-bin a completed run's latency distribution.
func (h *Histogram) EachBucket(fn func(value float64, count int64)) {
	keys := make([]int64, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fn((float64(k)+0.5)/bucketsPerUnit, h.buckets[k])
	}
	if h.overflow > 0 {
		fn(float64(maxBucket)/bucketsPerUnit, h.overflow)
	}
}

// fingerprint folds the histogram's exact state — count, the bit
// patterns of the Welford accumulators and extrema, the overflow count
// and every (bucket, count) pair in bucket order — into h.
func (h *Histogram) fingerprint(x uint64) uint64 {
	x = fnvMix(x, uint64(h.count))
	x = fnvMix(x, math.Float64bits(h.mean))
	x = fnvMix(x, math.Float64bits(h.m2))
	x = fnvMix(x, math.Float64bits(h.min))
	x = fnvMix(x, math.Float64bits(h.max))
	x = fnvMix(x, uint64(h.overflow))
	if h.underflow != 0 {
		// Mixed only when armed, behind a marker, so histograms that
		// never saw a negative sample (every correct run) keep the
		// fingerprint values they had before this counter existed.
		x = fnvMix(x, 0x756e646572) // "under" marker
		x = fnvMix(x, uint64(h.underflow))
	}
	keys := make([]int64, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		x = fnvMix(x, uint64(k))
		x = fnvMix(x, uint64(h.buckets[k]))
	}
	return x
}

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histogram{empty}"
	}
	if h.underflow > 0 {
		return fmt.Sprintf("histogram{n=%d underflow=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f}",
			h.count, h.underflow, h.Mean(), h.StdDev(), h.min, h.Quantile(0.5), h.Quantile(0.99), h.max)
	}
	return fmt.Sprintf("histogram{n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p99=%.3f max=%.3f}",
		h.count, h.Mean(), h.StdDev(), h.min, h.Quantile(0.5), h.Quantile(0.99), h.max)
}

// Sparkline renders the bucket distribution between min and max as a
// fixed-width ASCII bar chart for quick terminal inspection.
func (h *Histogram) Sparkline(width int) string {
	if h.count == 0 || width <= 0 {
		return ""
	}
	lo := int64(h.min * bucketsPerUnit)
	hi := int64(h.max*bucketsPerUnit) + 1
	if hi <= lo {
		hi = lo + 1
	}
	cols := make([]int64, width)
	span := hi - lo
	for k, c := range h.buckets {
		col := int((k - lo) * int64(width) / span)
		if col < 0 {
			col = 0
		}
		if col >= width {
			col = width - 1
		}
		cols[col] += c
	}
	var peak int64
	for _, c := range cols {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		return strings.Repeat(" ", width)
	}
	marks := []byte(" .:-=+*#%@")
	var b strings.Builder
	for _, c := range cols {
		idx := int(c * int64(len(marks)-1) / peak)
		b.WriteByte(marks[idx])
	}
	return b.String()
}
