package core

import (
	"testing"
	"testing/quick"
)

func TestTicketsForSharesExact(t *testing.T) {
	// 10/20/30/40 % is exactly representable with total 10.
	tickets, e, err := TicketsForShares([]float64{0.1, 0.2, 0.3, 0.4}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if e != 0 {
		t.Fatalf("error %v", e)
	}
	want := []uint64{1, 2, 3, 4}
	for i := range want {
		if tickets[i] != want[i] {
			t.Fatalf("tickets %v", tickets)
		}
	}
}

func TestTicketsForSharesUnnormalized(t *testing.T) {
	// Percent-style inputs normalize to the same assignment.
	a, _, err := TicketsForShares([]float64{10, 20, 30, 40}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	b, _, _ := TicketsForShares([]float64{0.1, 0.2, 0.3, 0.4}, 0.01)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%v vs %v", a, b)
		}
	}
}

func TestTicketsForSharesAwkwardRatio(t *testing.T) {
	// 1/3, 2/3 needs total divisible by 3.
	tickets, e, err := TicketsForShares([]float64{1.0 / 3, 2.0 / 3}, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if e > 0.001 {
		t.Fatalf("error %v", e)
	}
	if 2*tickets[0] != tickets[1] {
		t.Fatalf("tickets %v", tickets)
	}
	if tickets[0]+tickets[1] != 3 {
		t.Fatalf("not minimal: %v", tickets)
	}
}

func TestTicketsForSharesMinimality(t *testing.T) {
	// The search returns the SMALLEST total meeting the tolerance: for
	// equal shares the answer is one ticket each.
	tickets, _, err := TicketsForShares([]float64{1, 1, 1, 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if tk != 1 {
			t.Fatalf("tickets %v", tickets)
		}
	}
}

func TestTicketsForSharesValidation(t *testing.T) {
	if _, _, err := TicketsForShares(nil, 0.1); err == nil {
		t.Fatal("empty shares accepted")
	}
	if _, _, err := TicketsForShares([]float64{0.5, -0.5}, 0.1); err == nil {
		t.Fatal("negative share accepted")
	}
	if _, _, err := TicketsForShares([]float64{1, 2}, 0); err == nil {
		t.Fatal("zero tolerance accepted")
	}
	if _, _, err := TicketsForShares(make([]float64, 65), 0.1); err == nil {
		t.Fatal("too many masters accepted")
	}
}

func TestTicketsForSharesInfeasibleReturnsBest(t *testing.T) {
	// An irrational-ish ratio with an absurd tolerance cannot be met;
	// the best assignment is still returned with its achieved error.
	tickets, e, err := TicketsForShares([]float64{0.30000001, 0.69999999}, 1e-12)
	if err == nil {
		t.Fatal("expected infeasibility error")
	}
	if tickets == nil || e <= 0 {
		t.Fatalf("best-effort result missing: %v %v", tickets, e)
	}
}

func TestTicketsForSharesProperty(t *testing.T) {
	// For random targets the result meets the requested tolerance and
	// the lottery built from it reproduces the shares.
	f := func(raw [4]uint8) bool {
		shares := make([]float64, 4)
		for i, r := range raw {
			shares[i] = float64(r%50) + 1
		}
		tickets, e, err := TicketsForShares(shares, 0.02)
		if err != nil {
			return false
		}
		if e > 0.02 {
			return false
		}
		// Cross-check: normalized shares of tickets vs targets.
		var tTot uint64
		var sTot float64
		for i := range shares {
			tTot += tickets[i]
			sTot += shares[i]
		}
		for i := range shares {
			got := float64(tickets[i]) / float64(tTot)
			want := shares[i] / sTot
			rel := got/want - 1
			if rel < 0 {
				rel = -rel
			}
			if rel > 0.02+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
