package analytic

import (
	"fmt"

	"lotterybus/internal/core"
)

// Regime classification: deciding, from a sweep point's configuration
// alone, whether its long-run statistics are already known in closed
// form so simulation can be skipped. The classifier is deliberately
// conservative — it admits exactly the configuration classes the
// saturation oracle (check.SaturationOracle) continuously re-proves
// against the cycle-accurate simulator, with the oracle's tolerances,
// and answers Mixed for everything else. A Mixed answer is always safe:
// it only means "simulate".

// Regime is the classification of one sweep point.
type Regime int

const (
	// Mixed means the point is not provably idle or saturated; it must
	// be simulated.
	Mixed Regime = iota
	// Idle means every master provably offers zero traffic: shares and
	// utilization are exactly zero, no message ever moves.
	Idle
	// Saturated means every master is provably backlogged forever and
	// the arbiter's saturated bandwidth split has an oracle-proven
	// closed form.
	Saturated
)

// String names the regime.
func (r Regime) String() string {
	switch r {
	case Idle:
		return "idle"
	case Saturated:
		return "saturated"
	default:
		return "mixed"
	}
}

// Arbiter kinds the classifier understands (the lotterysim config
// vocabulary). Anything else classifies as Mixed.
const (
	KindLottery        = "lottery"
	KindDynamicLottery = "dynamic-lottery"
	KindPriority       = "priority"
	KindRoundRobin     = "round-robin"
	KindTDMA           = "tdma"
	KindTDMA1          = "tdma1"
)

// PointMaster describes one master of a sweep point as far as regime
// classification needs: what its generator provably does, not how it is
// seeded (classification must not depend on the random stream).
type PointMaster struct {
	// Saturating marks a generator that keeps its queue backlogged
	// forever (traffic.Saturating).
	Saturating bool
	// OfferedLoad is the long-run offered load in words/cycle, valid
	// only when LoadKnown. The classifier only ever compares it to zero.
	OfferedLoad float64
	// LoadKnown reports whether OfferedLoad is exact for this generator
	// (false for traffic classes or custom generators).
	LoadKnown bool
	// Words is the fixed message size in words.
	Words int
	// Slave is the index of the targeted slave.
	Slave int
}

// PointSlave describes one slave of a sweep point.
type PointSlave struct {
	WaitStates int
	Split      bool
}

// Point is the configuration of one sweep point, reduced to what regime
// classification consumes.
type Point struct {
	// Arbiter is the canonical kind (Kind* constants).
	Arbiter string
	// Weights are the per-master QoS weights (tickets, priorities or
	// TDMA slot weights).
	Weights []uint64
	// MaxBurst is the per-grant word cap; ArbLatency the idle cycles
	// charged per arbitration.
	MaxBurst   int
	ArbLatency int
	Masters    []PointMaster
	Slaves     []PointSlave
}

// Classify returns the point's regime.
//
// Idle requires every master's offered load to be exactly and provably
// zero. Saturated requires every master to be provably backlogged
// (Saturating), pipelined arbitration (ArbLatency 0), zero-wait
// non-split targeted slaves, equal effective burst min(Words, MaxBurst)
// across masters, and an arbiter whose saturated split the oracle
// proves:
//
//   - lottery / dynamic-lottery: ticket-fraction shares (tolerance 0.05);
//   - round-robin: equal shares (tolerance 0.02);
//   - tdma / tdma1: slot-fraction shares — under saturation every slot
//     is claimed by its backlogged owner, so one- and two-level wheels
//     coincide (tolerance 0.02);
//   - priority: winner-takes-all to the unique highest priority
//     (tolerance 0.01); duplicate maxima classify Mixed.
func Classify(p Point) Regime {
	if len(p.Masters) == 0 {
		return Mixed
	}
	idle := true
	for _, m := range p.Masters {
		if m.Saturating || !m.LoadKnown || m.OfferedLoad != 0 {
			idle = false
			break
		}
	}
	if idle {
		return Idle
	}
	if _, _, err := SaturatedShares(p); err == nil {
		return Saturated
	}
	return Mixed
}

// SaturatedShares returns the oracle-proven per-master bandwidth shares
// of a saturated point together with the share tolerance the oracle
// enforces, or an error naming the first condition the point fails. The
// shares are fractions of bus data cycles; with the zero-wait slaves the
// classification requires, utilization is 1 and master i's per-word
// latency is SaturatedPerWordLatency(shares[i]).
func SaturatedShares(p Point) (shares []float64, tol float64, err error) {
	if len(p.Masters) == 0 || len(p.Weights) != len(p.Masters) {
		return nil, 0, fmt.Errorf("analytic: point needs matching masters and weights")
	}
	if p.ArbLatency != 0 {
		return nil, 0, fmt.Errorf("analytic: arbitration latency %d is not modeled saturated", p.ArbLatency)
	}
	if p.MaxBurst <= 0 {
		return nil, 0, fmt.Errorf("analytic: non-positive MaxBurst")
	}
	burst := -1
	for i, m := range p.Masters {
		if !m.Saturating {
			return nil, 0, fmt.Errorf("analytic: master %d is not provably backlogged", i)
		}
		if m.Words <= 0 {
			return nil, 0, fmt.Errorf("analytic: master %d has no fixed message size", i)
		}
		if m.Slave < 0 || m.Slave >= len(p.Slaves) {
			return nil, 0, fmt.Errorf("analytic: master %d targets unknown slave %d", i, m.Slave)
		}
		if s := p.Slaves[m.Slave]; s.WaitStates != 0 || s.Split {
			return nil, 0, fmt.Errorf("analytic: targeted slave %d has wait states or split transactions", m.Slave)
		}
		eff := m.Words
		if eff > p.MaxBurst {
			eff = p.MaxBurst
		}
		if burst == -1 {
			burst = eff
		} else if eff != burst {
			return nil, 0, fmt.Errorf("analytic: unequal effective bursts (%d vs %d words)", burst, eff)
		}
	}

	n := len(p.Masters)
	shares = make([]float64, n)
	switch p.Arbiter {
	case KindLottery, KindDynamicLottery:
		// The dynamic manager samples live holdings each draw; with
		// constant weights it converges to the static fractions.
		for i := range shares {
			shares[i] = LotteryShare(p.Weights, i)
		}
		return shares, 0.05, nil
	case KindRoundRobin:
		for i := range shares {
			shares[i] = 1 / float64(n)
		}
		return shares, 0.02, nil
	case KindTDMA, KindTDMA1:
		slots := make([]int, n)
		for i, w := range p.Weights {
			slots[i] = int(w)
		}
		for i := range shares {
			s, err := TDMAServiceShareSet(slots, i, core.FullBitset(n))
			if err != nil {
				return nil, 0, err
			}
			shares[i] = s
		}
		return shares, 0.02, nil
	case KindPriority:
		best, dup := 0, false
		for i := 1; i < n; i++ {
			switch {
			case p.Weights[i] > p.Weights[best]:
				best, dup = i, false
			case p.Weights[i] == p.Weights[best]:
				dup = true
			}
		}
		if dup {
			return nil, 0, fmt.Errorf("analytic: duplicate top priority; winner not provable")
		}
		shares[best] = 1
		return shares, 0.01, nil
	default:
		return nil, 0, fmt.Errorf("analytic: arbiter %q has no proven saturated closed form", p.Arbiter)
	}
}

// OnOffOfferedLoad returns the long-run offered load (words/cycle) of an
// ON/OFF modulated source that offers loadOn words/cycle during ON
// periods of mean dwell meanOn cycles, separated by OFF periods of mean
// dwell meanOff cycles: loadOn scaled by the ON duty cycle.
func OnOffOfferedLoad(meanOn, meanOff, loadOn float64) float64 {
	if meanOn <= 0 {
		return 0
	}
	return loadOn * meanOn / (meanOn + meanOff)
}

// OnOffPeakToMean returns the burstiness (peak-to-mean load ratio) of an
// ON/OFF source: (meanOn+meanOff)/meanOn. A Bernoulli source has ratio 1.
func OnOffPeakToMean(meanOn, meanOff float64) float64 {
	if meanOn <= 0 {
		return 0
	}
	return (meanOn + meanOff) / meanOn
}

// OnOffLoneWait approximates the mean queueing delay (cycles, excluding
// service) of a lone master with ON/OFF traffic on an otherwise idle
// bus. During ON dwells the queue behaves as Geo/D/1 at the in-burst
// utilization; arrivals only occur during ON, so the mean wait over all
// arrivals is the ON-phase Geo/D/1 wait. This is a regime-switching
// approximation, not an exact result: it ignores backlog carried across
// the ON/OFF boundary, so it reads low for dwells short relative to the
// service time. The package tests validate it against simulation within
// a documented factor of two; use it for sizing, not for verdicts.
func OnOffLoneWait(meanOn, meanOff, loadOn float64, msgWords int) (float64, error) {
	if msgWords <= 0 {
		return 0, fmt.Errorf("analytic: non-positive message size")
	}
	rhoOn := loadOn // one word per cycle of service capacity
	if rhoOn >= 1 {
		return 0, fmt.Errorf("analytic: in-burst load %v saturates the bus; no stationary wait", rhoOn)
	}
	return GeoD1Wait(rhoOn, float64(msgWords))
}
